package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Admission.Acquire when the node's queue
// is full: the request was shed without executing. HTTP handlers map it
// to 429 Too Many Requests with a Retry-After header.
var ErrOverloaded = errors.New("cluster: node at capacity, request shed")

// AdmissionStats is a point-in-time snapshot of a node's admission
// counters.
type AdmissionStats struct {
	// Executing is the number of requests currently holding a slot.
	Executing int64
	// Queued is the number of requests waiting for a slot.
	Queued int64
	// Shed counts requests rejected because the queue was full.
	Shed uint64
	// MaxConcurrent and MaxQueue echo the configured bounds.
	MaxConcurrent, MaxQueue int
}

// Admission is a node's per-process admission controller: at most
// MaxConcurrent requests execute, at most MaxQueue more wait, and
// everything beyond that is shed immediately with ErrOverloaded — the
// bounded-queue discipline that keeps an overloaded node's latency flat
// instead of letting an unbounded backlog grow. Safe for concurrent
// use.
type Admission struct {
	slots      chan struct{}
	maxQueue   int64
	retryAfter time.Duration

	executing atomic.Int64
	queued    atomic.Int64
	shed      atomic.Uint64
}

// NewAdmission builds an admission controller. maxConcurrent
// non-positive selects 1; maxQueue negative selects 0 (shed the moment
// all slots are busy); retryAfter non-positive selects one second.
func NewAdmission(maxConcurrent, maxQueue int, retryAfter time.Duration) *Admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &Admission{
		slots:      make(chan struct{}, maxConcurrent),
		maxQueue:   int64(maxQueue),
		retryAfter: retryAfter,
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns a release function that MUST be called
// exactly once when the request finishes. When the queue is full it
// returns ErrOverloaded without waiting; when ctx dies while queued it
// returns ctx.Err().
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.executing.Add(1)
		return a.release, nil
	default:
	}
	// Slots busy: join the bounded queue or shed.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.executing.Add(1)
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a slot to the pool.
func (a *Admission) release() {
	a.executing.Add(-1)
	<-a.slots
}

// RetryAfter is the backoff a shed client is told to wait — the
// Retry-After header value on 429 responses.
func (a *Admission) RetryAfter() time.Duration { return a.retryAfter }

// Stats snapshots the admission counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Executing:     a.executing.Load(),
		Queued:        a.queued.Load(),
		Shed:          a.shed.Load(),
		MaxConcurrent: cap(a.slots),
		MaxQueue:      int(a.maxQueue),
	}
}
