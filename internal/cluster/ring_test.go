package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// perms returns all permutations of names (test-sized inputs only).
func perms(names []string) [][]string {
	if len(names) <= 1 {
		return [][]string{append([]string(nil), names...)}
	}
	var out [][]string
	for i := range names {
		rest := make([]string, 0, len(names)-1)
		rest = append(rest, names[:i]...)
		rest = append(rest, names[i+1:]...)
		for _, tail := range perms(rest) {
			out = append(out, append([]string{names[i]}, tail...))
		}
	}
	return out
}

// TestRingJoinOrderIndependent is the determinism contract: every join
// order of the same member set yields identical ownership for every
// fingerprint.
func TestRingJoinOrderIndependent(t *testing.T) {
	names := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	ref := BuildRing(names, 32)

	rng := rand.New(rand.NewSource(7))
	fps := make([]uint64, 500)
	for i := range fps {
		fps[i] = rng.Uint64()
	}

	for _, order := range perms(names) {
		r := BuildRing(order, 32)
		if !reflect.DeepEqual(r.Nodes(), ref.Nodes()) {
			t.Fatalf("order %v: members %v, want %v", order, r.Nodes(), ref.Nodes())
		}
		for _, fp := range fps {
			want, _ := ref.Owner(fp)
			got, ok := r.Owner(fp)
			if !ok || got != want {
				t.Fatalf("order %v: Owner(%#x) = %q, want %q", order, fp, got, want)
			}
		}
	}
}

func TestRingDedupeAndEmpty(t *testing.T) {
	r := BuildRing([]string{"b", "a", "b", "", "a"}, 8)
	if got, want := r.Nodes(), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Nodes() = %v, want %v", got, want)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}

	empty := BuildRing(nil, 0)
	if _, ok := empty.Owner(42); ok {
		t.Error("empty ring reported an owner")
	}
	var nilRing *Ring
	if _, ok := nilRing.Owner(42); ok {
		t.Error("nil ring reported an owner")
	}
}

// TestRingDistribution checks the virtual points spread ownership
// roughly evenly: with 4 nodes and default replicas, every node owns a
// non-trivial share of random fingerprints.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	r := BuildRing(nodes, 0) // default replicas
	counts := make(map[string]int)
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	for i := 0; i < n; i++ {
		owner, ok := r.Owner(rng.Uint64())
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		counts[owner]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / n
		if share < 0.15 {
			t.Errorf("node %s owns %.1f%% of keys; want a meaningful share (counts %v)",
				node, share*100, counts)
		}
	}
}

// TestRingRemovalStability: dropping one node only reassigns the keys
// that node owned — everyone else's keys keep their owner. This is the
// property that keeps N-1 compilation caches warm across a node death.
func TestRingRemovalStability(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c", "http://d"}
	full := BuildRing(all, 0)
	without := BuildRing(all[:3], 0) // drop http://d

	rng := rand.New(rand.NewSource(11))
	moved := 0
	for i := 0; i < 5000; i++ {
		fp := rng.Uint64()
		before, _ := full.Owner(fp)
		after, _ := without.Owner(fp)
		if before == "http://d" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes; consistent hashing should move none", moved)
	}
}
