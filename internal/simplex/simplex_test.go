package simplex

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// min -x0 - 2x1  s.t.  x0 + x1 <= 4,  x1 <= 3.  Opt: x=(1,3), obj -7.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{1: 1}, LE, 3)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Objective, -7) {
		t.Errorf("objective = %v, want -7", r.Objective)
	}
	if !approx(r.X[0], 1) || !approx(r.X[1], 3) {
		t.Errorf("x = %v, want [1 3]", r.X)
	}
}

func TestEquality(t *testing.T) {
	// min x0 + x1  s.t.  x0 + x1 = 2,  x0 - x1 = 0.  Opt: (1,1), obj 2.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, EQ, 0)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 1) || !approx(r.X[1], 1) {
		t.Errorf("x = %v, want [1 1]", r.X)
	}
}

func TestGE(t *testing.T) {
	// min 2x0 + 3x1  s.t.  x0 + x1 >= 4,  x0 >= 1.  Opt: (4,0), obj 8.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 4)
	p.AddConstraint(map[int]float64{0: 1}, GE, 1)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Objective, 8) {
		t.Errorf("objective = %v, want 8", r.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 5)
	p.AddConstraint(map[int]float64{0: 1}, LE, 3)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x0  s.t.  -x0 <= -3  (i.e. x0 >= 3).
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: -1}, LE, -3)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 3) {
		t.Errorf("x0 = %v, want 3", r.X[0])
	}
}

func TestUpperBounds(t *testing.T) {
	// min -x0 - x1 with x0,x1 <= 1: opt (1,1).
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddUpperBound(0, 1)
	p.AddUpperBound(1, 1)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Objective, -2) {
		t.Errorf("objective = %v, want -2", r.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// Degenerate vertex: several constraints meet at the optimum.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 2)
	p.AddConstraint(map[int]float64{0: 1}, LE, 2)
	p.AddConstraint(map[int]float64{1: 1}, LE, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, LE, 4)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Objective, -2) {
		t.Errorf("objective = %v, want -2", r.Objective)
	}
}

// TestAssignmentLPIsIntegral exercises the structure of the MQO relaxation:
// a pure assignment LP (one plan per query, no savings) has an integral
// optimal vertex.
func TestAssignmentLPIsIntegral(t *testing.T) {
	// Two queries, two plans each; costs 2,4 and 3,1.
	p := NewProblem(4)
	costs := []float64{2, 4, 3, 1}
	for j, c := range costs {
		p.SetObjective(j, c)
	}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 1)
	p.AddConstraint(map[int]float64{2: 1, 3: 1}, EQ, 1)
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Objective, 3) { // plans 0 and 3
		t.Errorf("objective = %v, want 3", r.Objective)
	}
	for j, v := range r.X {
		if !approx(v, 0) && !approx(v, 1) {
			t.Errorf("x[%d] = %v, want integral", j, v)
		}
	}
}

// TestRandomLPsAgainstEnumeration compares LP optima of small random
// bounded LPs against brute-force enumeration over a fine grid of the
// vertices (all subsets of tight constraints is overkill; since all our
// variables are bounded in [0,1] and objectives linear, the optimum over
// the box without other constraints is at a corner).
func TestRandomBoxLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		p := NewProblem(n)
		want := 0.0
		for j := 0; j < n; j++ {
			c := rng.NormFloat64()
			p.SetObjective(j, c)
			p.AddUpperBound(j, 1)
			if c < 0 {
				want += c // corner: x_j = 1 when c_j < 0
			}
		}
		r, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.Objective, want) {
			t.Errorf("trial %d: objective %v, want %v", trial, r.Objective, want)
		}
	}
}

// TestLPLowerBoundsILP verifies the relaxation property on random MQO-like
// models: the LP optimum never exceeds the best integral solution found by
// enumeration.
func TestLPLowerBoundsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		// Three queries × two plans with a random shared-savings term
		// linearized via y <= x variables.
		p := NewProblem(7) // 6 x vars + 1 y var
		costs := make([]float64, 6)
		for j := range costs {
			costs[j] = 1 + rng.Float64()*5
			p.SetObjective(j, costs[j])
		}
		s := 1 + rng.Float64()*4
		p.SetObjective(6, -s)
		for q := 0; q < 3; q++ {
			p.AddConstraint(map[int]float64{2 * q: 1, 2*q + 1: 1}, EQ, 1)
		}
		// y <= x0, y <= x2 (sharing between plan 0 and plan 2).
		p.AddConstraint(map[int]float64{6: 1, 0: -1}, LE, 0)
		p.AddConstraint(map[int]float64{6: 1, 2: -1}, LE, 0)
		p.AddUpperBound(6, 1)
		r, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate integral solutions.
		best := math.Inf(1)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				for c := 0; c < 2; c++ {
					cost := costs[a] + costs[2+b] + costs[4+c]
					if a == 0 && b == 0 {
						cost -= s
					}
					if cost < best {
						best = cost
					}
				}
			}
		}
		if r.Objective > best+1e-6 {
			t.Errorf("trial %d: LP bound %v exceeds integral optimum %v", trial, r.Objective, best)
		}
	}
}
