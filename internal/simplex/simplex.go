// Package simplex implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A_i·x (≤ | = | ≥) b_i    for each row i
//	            0 ≤ x_j ≤ u_j            (u_j may be +Inf)
//
// It is the linear-programming substrate beneath internal/ilp, standing in
// for the commercial solver used by the paper's LIN-MQO and LIN-QUB
// baselines. Bland's anti-cycling rule kicks in after a pivot budget;
// upper bounds are handled by explicit rows during model construction so
// the core tableau logic stays simple and auditable.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a constraint row.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // ≤
	EQ                 // =
	GE                 // ≥
)

// Constraint is one row A·x rel B.
type Constraint struct {
	Coeffs map[int]float64
	Rel    Relation
	B      float64
}

// Problem is an LP under construction.
type Problem struct {
	numVars     int
	obj         []float64
	constraints []Constraint
}

// NewProblem creates an LP with n non-negative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, obj: make([]float64, n)}
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.numVars }

// SetObjective sets the coefficient of variable j in the minimized
// objective.
func (p *Problem) SetObjective(j int, c float64) {
	p.obj[j] = c
}

// AddConstraint appends a row. Coefficient maps are copied.
func (p *Problem) AddConstraint(coeffs map[int]float64, rel Relation, b float64) {
	cp := make(map[int]float64, len(coeffs))
	for j, v := range coeffs {
		if j < 0 || j >= p.numVars {
			panic(fmt.Sprintf("simplex: variable %d out of range", j))
		}
		cp[j] = v
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: cp, Rel: rel, B: b})
}

// AddUpperBound adds x_j ≤ u as an explicit row.
func (p *Problem) AddUpperBound(j int, u float64) {
	p.AddConstraint(map[int]float64{j: 1}, LE, u)
}

// Result of an LP solve.
type Result struct {
	// X is the optimal assignment (length NumVars).
	X []float64
	// Objective is c·X.
	Objective float64
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("simplex: problem is infeasible")
	ErrUnbounded  = errors.New("simplex: problem is unbounded")
	ErrIterLimit  = errors.New("simplex: iteration limit exceeded")
)

const eps = 1e-9

// Solve runs two-phase primal simplex and returns an optimal solution.
func (p *Problem) Solve() (*Result, error) {
	t := newTableau(p)
	if err := t.phase1(); err != nil {
		return nil, err
	}
	if err := t.phase2(); err != nil {
		return nil, err
	}
	x := t.extract()
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	return &Result{X: x, Objective: obj}, nil
}

// tableau is the dense simplex tableau. Columns: structural variables,
// then one slack/surplus per inequality row, then one artificial variable
// per row needing one. The last column is the RHS.
type tableau struct {
	p          *Problem
	m, n       int // rows, structural vars
	slackOf    []int
	artOf      []int
	totalCols  int
	a          [][]float64 // m rows × totalCols+1 (RHS last)
	basis      []int       // basic variable per row
	numArt     int
	iterBudget int
}

func newTableau(p *Problem) *tableau {
	m := len(p.constraints)
	t := &tableau{p: p, m: m, n: p.numVars, slackOf: make([]int, m), artOf: make([]int, m)}
	col := p.numVars
	for i, c := range p.constraints {
		t.slackOf[i] = -1
		if c.Rel != EQ {
			t.slackOf[i] = col
			col++
		}
	}
	for i, c := range p.constraints {
		t.artOf[i] = -1
		// Normalize rows to non-negative RHS first; decide artificials
		// after normalization in build below.
		_ = c
	}
	// Build rows with normalized sign, then assign artificials where the
	// slack cannot serve as the initial basic variable.
	rows := make([][]float64, m)
	needArt := make([]bool, m)
	for i, c := range p.constraints {
		row := make([]float64, col)
		for j, v := range c.Coeffs {
			row[j] = v
		}
		b := c.B
		rel := c.Rel
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			row[t.slackOf[i]] = 1
			needArt[i] = false
		case GE:
			row[t.slackOf[i]] = -1
			needArt[i] = true
		case EQ:
			needArt[i] = true
		}
		rows[i] = append(row, b)
	}
	for i := range needArt {
		if needArt[i] {
			t.artOf[i] = col
			col++
			t.numArt++
		}
	}
	t.totalCols = col
	t.a = make([][]float64, m)
	t.basis = make([]int, m)
	for i := 0; i < m; i++ {
		row := make([]float64, col+1)
		copy(row, rows[i][:len(rows[i])-1])
		row[col] = rows[i][len(rows[i])-1]
		if t.artOf[i] >= 0 {
			row[t.artOf[i]] = 1
			t.basis[i] = t.artOf[i]
		} else {
			t.basis[i] = t.slackOf[i]
		}
		t.a[i] = row
	}
	t.iterBudget = 200 * (m + col + 10)
	return t
}

// reducedCosts computes z_j - c_j for objective vector c over all columns.
func (t *tableau) reducedCosts(c []float64) []float64 {
	r := make([]float64, t.totalCols)
	// y_i = c_basis[i]; r_j = Σ_i y_i a_ij − c_j
	for j := 0; j < t.totalCols; j++ {
		sum := 0.0
		for i := 0; i < t.m; i++ {
			cb := 0.0
			if t.basis[i] < len(c) {
				cb = c[t.basis[i]]
			}
			if cb != 0 {
				sum += cb * t.a[i][j]
			}
		}
		cj := 0.0
		if j < len(c) {
			cj = c[j]
		}
		r[j] = sum - cj
	}
	return r
}

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pv := t.a[row][col]
	for j := 0; j <= t.totalCols; j++ {
		t.a[row][j] /= pv
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.totalCols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
	}
	t.basis[row] = col
}

// optimize runs primal simplex for the objective c (length ≤ totalCols;
// missing entries are zero). forbid marks columns that may not enter.
func (t *tableau) optimize(c []float64, forbid func(j int) bool) error {
	iters := 0
	for {
		iters++
		if iters > t.iterBudget {
			return ErrIterLimit
		}
		r := t.reducedCosts(c)
		// Dantzig rule with Bland fallback after a budget of pivots.
		bland := iters > t.iterBudget/2
		enter := -1
		bestR := eps
		for j := 0; j < t.totalCols; j++ {
			if forbid != nil && forbid(j) {
				continue
			}
			if r[j] > bestR {
				if bland {
					enter = j
					break
				}
				if enter == -1 || r[j] > bestR {
					enter = j
					bestR = r[j]
				}
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.totalCols] / t.a[i][enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
}

// phase1 drives artificial variables to zero.
func (t *tableau) phase1() error {
	if t.numArt == 0 {
		return nil
	}
	// Phase-1 objective: minimize sum of artificials, i.e. maximize
	// −Σ art; we pass c with −1 on artificial columns... the optimize
	// loop maximizes z−c reduction for minimization of c·x, so set
	// c_art = 1 and zero elsewhere.
	c := make([]float64, t.totalCols)
	for i := 0; i < t.m; i++ {
		if t.artOf[i] >= 0 {
			c[t.artOf[i]] = 1
		}
	}
	if err := t.optimize(c, nil); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return ErrInfeasible // phase 1 is never unbounded in exact arithmetic
		}
		return err
	}
	// Check artificial sum.
	sum := 0.0
	for i := 0; i < t.m; i++ {
		if t.artOf[i] >= 0 && t.basis[i] == t.artOf[i] {
			sum += t.a[i][t.totalCols]
		}
	}
	if sum > 1e-6 {
		return ErrInfeasible
	}
	// Pivot remaining artificials out of the basis where possible.
	for i := 0; i < t.m; i++ {
		if t.artOf[i] >= 0 && t.basis[i] == t.artOf[i] {
			for j := 0; j < t.totalCols; j++ {
				if t.isArtificial(j) {
					continue
				}
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					break
				}
			}
		}
	}
	return nil
}

func (t *tableau) isArtificial(j int) bool {
	for i := 0; i < t.m; i++ {
		if t.artOf[i] == j {
			return true
		}
	}
	return false
}

// phase2 minimizes the true objective with artificials forbidden.
func (t *tableau) phase2() error {
	c := make([]float64, t.totalCols)
	copy(c, t.p.obj)
	return t.optimize(c, t.isArtificial)
}

// extract reads the structural solution from the tableau.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.a[i][t.totalCols]
		}
	}
	// Clean tiny negatives from roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	return x
}
