package qubo

import (
	"math"
	"testing"
)

// FuzzBuildQUBO fuzzes QUBO construction as an op-stream interpreter:
// the input bytes drive a sequence of AddLinear/AddQuadratic calls
// (including the i==j fold and repeated accumulation on one coupling),
// and the resulting sparse problem is checked against an independently
// maintained dense weight matrix — energies, flip deltas, accessor
// symmetry, coupling enumeration, and clones must all agree. Run the
// smoke pass with:
//
//	go test -fuzz=FuzzBuildQUBO -fuzztime=20s ./internal/qubo
func FuzzBuildQUBO(f *testing.F) {
	f.Add([]byte{3, 0, 0, 1, 4, 1, 0, 1, 8})
	f.Add([]byte{8, 1, 2, 3, 252, 1, 3, 2, 4, 0, 7, 7, 16, 1, 2, 3, 4})
	f.Add([]byte{1, 1, 0, 0, 200})
	f.Add([]byte{16, 1, 15, 14, 127, 1, 14, 15, 129, 1, 5, 5, 50})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%12
		q := New(n)
		dense := make([][]float64, n) // dense[i][j] with i <= j, diagonal = linear
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		ops := data[1:]
		for len(ops) >= 4 {
			op, i, j := ops[0]%2, int(ops[1])%n, int(ops[2])%n
			w := float64(int8(ops[3])) / 4
			ops = ops[4:]
			if op == 0 {
				q.AddLinear(i, w)
				dense[i][i] += w
			} else {
				q.AddQuadratic(i, j, w)
				if i == j {
					dense[i][i] += w // documented fold: x_i² = x_i
				} else {
					a, b := i, j
					if a > b {
						a, b = b, a
					}
					dense[a][b] += w
				}
			}
		}
		q.Offset = float64(int8(data[0])) / 8

		denseEnergy := func(x []bool) float64 {
			e := q.Offset
			for i := 0; i < n; i++ {
				if !x[i] {
					continue
				}
				e += dense[i][i]
				for j := i + 1; j < n; j++ {
					if x[j] {
						e += dense[i][j]
					}
				}
			}
			return e
		}

		// A handful of assignments derived from the input, plus the two
		// constant ones.
		assignments := [][]bool{make([]bool, n), make([]bool, n)}
		for i := range assignments[1] {
			assignments[1][i] = true
		}
		for k := 0; k+1 < len(data) && k < 4; k++ {
			x := make([]bool, n)
			for i := range x {
				x[i] = (int(data[k+1])>>(i%8))&1 == 1
			}
			assignments = append(assignments, x)
		}

		clone := q.Clone()
		for _, x := range assignments {
			want := denseEnergy(x)
			if got := q.Energy(x); !closeEnough(got, want) {
				t.Fatalf("Energy(%v) = %v, dense recompute %v", x, got, want)
			}
			if got := clone.Energy(x); !closeEnough(got, q.Energy(x)) {
				t.Fatalf("clone energy diverges: %v vs %v", got, q.Energy(x))
			}
			for i := 0; i < n; i++ {
				flipped := append([]bool(nil), x...)
				flipped[i] = !flipped[i]
				want := q.Energy(flipped) - q.Energy(x)
				if got := q.FlipDelta(x, i); !closeEnough(got, want) {
					t.Fatalf("FlipDelta(%v, %d) = %v, want %v", x, i, got, want)
				}
			}
		}

		// Accessors: symmetry and agreement with the dense matrix.
		for i := 0; i < n; i++ {
			if got := q.Linear(i); !closeEnough(got, dense[i][i]) {
				t.Fatalf("Linear(%d) = %v, want %v", i, got, dense[i][i])
			}
			for j := i + 1; j < n; j++ {
				if q.Quadratic(i, j) != q.Quadratic(j, i) {
					t.Fatalf("Quadratic not symmetric at (%d,%d)", i, j)
				}
				if got := q.Quadratic(i, j); !closeEnough(got, dense[i][j]) {
					t.Fatalf("Quadratic(%d,%d) = %v, want %v", i, j, got, dense[i][j])
				}
			}
		}
		prev := Coupling{I: -1, J: -1}
		for _, c := range q.Couplings() {
			if c.I >= c.J {
				t.Fatalf("coupling %+v not canonical (I < J)", c)
			}
			if c.I < prev.I || (c.I == prev.I && c.J <= prev.J) {
				t.Fatalf("couplings not sorted: %+v after %+v", c, prev)
			}
			prev = c
		}
	})
}

// closeEnough compares accumulated float sums with a scaled tolerance.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
