package qubo

import "testing"

func TestFingerprintOrderIndependent(t *testing.T) {
	a := New(3)
	a.AddLinear(0, 1.5)
	a.AddQuadratic(0, 1, 2)
	a.AddQuadratic(1, 2, -1)

	b := New(3)
	b.AddQuadratic(2, 1, -1) // reversed argument and call order
	b.AddQuadratic(1, 0, 2)
	b.AddLinear(0, 1.5)

	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("construction order changed the fingerprint")
	}
	b.AddLinear(2, 0.25)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("weight change did not change the fingerprint")
	}
}

func TestFreeze(t *testing.T) {
	p := New(2)
	p.AddQuadratic(0, 1, 3)
	p.Freeze()
	if !p.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a frozen problem did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddLinear", func() { p.AddLinear(0, 1) })
	mustPanic("AddQuadratic", func() { p.AddQuadratic(0, 1, 1) })

	// Reads and evaluation still work, and clones are mutable again.
	if p.Quadratic(0, 1) != 3 {
		t.Fatal("frozen read broken")
	}
	if got := p.Energy([]bool{true, true}); got != 3 {
		t.Fatalf("frozen Energy = %v, want 3", got)
	}
	c := p.Clone()
	if c.Frozen() {
		t.Fatal("clone inherited frozen state")
	}
	c.AddLinear(0, 1) // must not panic
}
