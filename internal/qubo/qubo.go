// Package qubo models quadratic unconstrained binary optimization (QUBO)
// problems, the input formalism of the D-Wave quantum annealer (Section 3
// of the paper): minimize Σ_{i≤j} w_ij·x_i·x_j over x ∈ {0,1}^n.
//
// The package stores weights sparsely, supports incremental energy deltas
// for local-search samplers, and provides exact solvers for verification of
// the logical and physical mappings on small instances.
package qubo

import (
	"fmt"
	"math"
	"sort"
)

// Problem is a QUBO instance over n binary variables. Linear weights w_ii
// are stored densely; quadratic weights w_ij (i<j) sparsely with adjacency
// lists for fast neighborhood evaluation.
type Problem struct {
	n      int
	linear []float64
	quad   map[[2]int]float64
	adj    [][]Term // adj[i] holds terms (j, w_ij) with j != i
	frozen bool
	// Offset is a constant added to every energy value. Mappings that
	// complete squares or translate from Ising use it so that reported
	// energies stay comparable.
	Offset float64
}

// Term is one quadratic interaction partner: variable Other with weight W.
type Term struct {
	Other int
	W     float64
}

// New creates an empty QUBO problem over n variables.
func New(n int) *Problem {
	if n < 0 {
		panic("qubo: negative variable count")
	}
	return &Problem{
		n:      n,
		linear: make([]float64, n),
		quad:   make(map[[2]int]float64),
		adj:    make([][]Term, n),
	}
}

// N returns the number of variables.
func (p *Problem) N() int { return p.n }

// AddLinear adds w to the linear weight of variable i (the w_ii term; for
// binary variables x_i² = x_i).
func (p *Problem) AddLinear(i int, w float64) {
	p.checkFrozen()
	p.checkVar(i)
	p.linear[i] += w
}

// AddQuadratic adds w to the coupling weight between distinct variables i
// and j. Repeated calls accumulate.
func (p *Problem) AddQuadratic(i, j int, w float64) {
	p.checkFrozen()
	p.checkVar(i)
	p.checkVar(j)
	if i == j {
		p.linear[i] += w
		return
	}
	if i > j {
		i, j = j, i
	}
	key := [2]int{i, j}
	old, existed := p.quad[key]
	p.quad[key] = old + w
	if existed {
		p.updateAdj(i, j, old+w)
		p.updateAdj(j, i, old+w)
	} else {
		p.adj[i] = append(p.adj[i], Term{Other: j, W: old + w})
		p.adj[j] = append(p.adj[j], Term{Other: i, W: old + w})
	}
}

func (p *Problem) updateAdj(i, j int, w float64) {
	for k := range p.adj[i] {
		if p.adj[i][k].Other == j {
			p.adj[i][k].W = w
			return
		}
	}
}

func (p *Problem) checkVar(i int) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("qubo: variable %d out of range [0,%d)", i, p.n))
	}
}

// Linear returns the linear weight of variable i.
func (p *Problem) Linear(i int) float64 { return p.linear[i] }

// Quadratic returns the coupling weight between i and j (0 if absent).
func (p *Problem) Quadratic(i, j int) float64 {
	if i == j {
		return p.linear[i]
	}
	if i > j {
		i, j = j, i
	}
	return p.quad[[2]int{i, j}]
}

// Neighbors returns the quadratic terms incident to variable i. The slice
// is shared; callers must not modify it.
func (p *Problem) Neighbors(i int) []Term { return p.adj[i] }

// NumQuadratic returns the number of distinct non-zero couplings stored.
func (p *Problem) NumQuadratic() int { return len(p.quad) }

// Couplings returns all stored couplings sorted by (i, j). Zero-weight
// entries created by cancellation are included; callers that care should
// filter on W.
func (p *Problem) Couplings() []Coupling {
	out := make([]Coupling, 0, len(p.quad))
	for k, w := range p.quad {
		out = append(out, Coupling{I: k[0], J: k[1], W: w})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Coupling is one quadratic term w_ij·x_i·x_j with I < J.
type Coupling struct {
	I, J int
	W    float64
}

// Energy evaluates Σ_{i≤j} w_ij·x_i·x_j + Offset for assignment x.
func (p *Problem) Energy(x []bool) float64 {
	if len(x) != p.n {
		panic(fmt.Sprintf("qubo: assignment length %d != %d variables", len(x), p.n))
	}
	e := p.Offset
	for i, on := range x {
		if !on {
			continue
		}
		e += p.linear[i]
		for _, t := range p.adj[i] {
			if t.Other > i && x[t.Other] {
				e += t.W
			}
		}
	}
	return e
}

// FlipDelta returns the energy change from flipping variable i in x.
// Local-search samplers use it to avoid full re-evaluation.
func (p *Problem) FlipDelta(x []bool, i int) float64 {
	d := p.linear[i]
	for _, t := range p.adj[i] {
		if x[t.Other] {
			d += t.W
		}
	}
	if x[i] {
		return -d
	}
	return d
}

// MaxAbsWeight returns the largest |w| over linear and quadratic terms,
// used when scaling to hardware weight ranges.
func (p *Problem) MaxAbsWeight() float64 {
	m := 0.0
	for _, w := range p.linear {
		if a := math.Abs(w); a > m {
			m = a
		}
	}
	for _, w := range p.quad {
		if a := math.Abs(w); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a deep copy of the problem. The copy is always mutable,
// even when p is frozen — cloning is the supported way to derive a
// variant of a cached formula.
func (p *Problem) Clone() *Problem {
	c := New(p.n)
	c.Offset = p.Offset
	copy(c.linear, p.linear)
	for k, w := range p.quad {
		c.quad[k] = w
	}
	for i := range p.adj {
		c.adj[i] = append([]Term(nil), p.adj[i]...)
	}
	return c
}
