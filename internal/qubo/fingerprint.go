package qubo

import (
	"io"

	"repro/internal/hashutil"
)

// Freeze makes the problem immutable: any subsequent AddLinear or
// AddQuadratic panics. Compiled formulas placed in a shared compilation
// cache are frozen so that one request cannot silently corrupt the
// artifact every other request reads; accessors and energy evaluation
// are unaffected. Freezing is idempotent and cannot be undone — Clone
// to obtain a mutable copy.
func (p *Problem) Freeze() { p.frozen = true }

// Frozen reports whether the problem has been frozen.
func (p *Problem) Frozen() bool { return p.frozen }

// checkFrozen guards the mutating entry points.
func (p *Problem) checkFrozen() {
	if p.frozen {
		panic("qubo: problem is frozen (cached artifacts are immutable; Clone to modify)")
	}
}

// HashInto streams a canonical binary encoding of the formula — variable
// count, linear weights, couplings in sorted order, and the energy
// offset — into w. Structurally identical formulas produce identical
// streams regardless of the AddQuadratic call order that built them.
func (p *Problem) HashInto(w io.Writer) {
	hashutil.WriteInt(w, p.n)
	for _, l := range p.linear {
		hashutil.WriteF64(w, l)
	}
	cs := p.Couplings()
	hashutil.WriteInt(w, len(cs))
	for _, c := range cs {
		hashutil.WriteInt(w, c.I)
		hashutil.WriteInt(w, c.J)
		hashutil.WriteF64(w, c.W)
	}
	hashutil.WriteF64(w, p.Offset)
}

// Fingerprint returns a 64-bit digest of HashInto's canonical encoding.
func (p *Problem) Fingerprint() uint64 { return hashutil.Sum64(p.HashInto) }
