package qubo

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
)

// Freeze makes the problem immutable: any subsequent AddLinear or
// AddQuadratic panics. Compiled formulas placed in a shared compilation
// cache are frozen so that one request cannot silently corrupt the
// artifact every other request reads; accessors and energy evaluation
// are unaffected. Freezing is idempotent and cannot be undone — Clone
// to obtain a mutable copy.
func (p *Problem) Freeze() { p.frozen = true }

// Frozen reports whether the problem has been frozen.
func (p *Problem) Frozen() bool { return p.frozen }

// checkFrozen guards the mutating entry points.
func (p *Problem) checkFrozen() {
	if p.frozen {
		panic("qubo: problem is frozen (cached artifacts are immutable; Clone to modify)")
	}
}

// HashInto streams a canonical binary encoding of the formula — variable
// count, linear weights, couplings in sorted order, and the energy
// offset — into w. Structurally identical formulas produce identical
// streams regardless of the AddQuadratic call order that built them.
func (p *Problem) HashInto(w io.Writer) {
	writeU64(w, uint64(int64(p.n)))
	for _, l := range p.linear {
		writeU64(w, math.Float64bits(l))
	}
	cs := p.Couplings()
	writeU64(w, uint64(len(cs)))
	for _, c := range cs {
		writeU64(w, uint64(int64(c.I)))
		writeU64(w, uint64(int64(c.J)))
		writeU64(w, math.Float64bits(c.W))
	}
	writeU64(w, math.Float64bits(p.Offset))
}

// Fingerprint returns a 64-bit digest of HashInto's canonical encoding.
func (p *Problem) Fingerprint() uint64 {
	h := fnv.New64a()
	p.HashInto(h)
	return h.Sum64()
}

// writeU64 streams v to w in a fixed (little-endian) byte order — the
// same encoding plancache.Keyer.Uint64 uses, so every fingerprint
// contribution to a cache key is byte-order stable by construction.
func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}
