package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomProblem(rng *rand.Rand, n int, density float64) *Problem {
	p := New(n)
	for i := 0; i < n; i++ {
		p.AddLinear(i, rng.NormFloat64()*3)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				p.AddQuadratic(i, j, rng.NormFloat64()*3)
			}
		}
	}
	return p
}

func TestEnergyBruteForceAgreement(t *testing.T) {
	// Energy via the sparse representation must equal the naive dense sum.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		p := randomProblem(rng, n, 0.5)
		p.Offset = rng.NormFloat64()
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		want := p.Offset
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				w := p.Quadratic(i, j)
				xi, xj := 0.0, 0.0
				if x[i] {
					xi = 1
				}
				if x[j] {
					xj = 1
				}
				want += w * xi * xj
			}
		}
		if got := p.Energy(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Energy = %v, want %v", trial, got, want)
		}
	}
}

func TestFlipDeltaMatchesEnergyDifference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		p := randomProblem(rng, n, 0.6)
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		i := rng.Intn(n)
		before := p.Energy(x)
		d := p.FlipDelta(x, i)
		x[i] = !x[i]
		after := p.Energy(x)
		return math.Abs((after-before)-d) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddQuadraticAccumulates(t *testing.T) {
	p := New(3)
	p.AddQuadratic(0, 2, 1.5)
	p.AddQuadratic(2, 0, 2.5) // order-insensitive
	if got := p.Quadratic(0, 2); got != 4 {
		t.Errorf("Quadratic(0,2) = %v, want 4", got)
	}
	if got := p.Quadratic(2, 0); got != 4 {
		t.Errorf("Quadratic(2,0) = %v, want 4", got)
	}
	// Adjacency stays consistent after accumulation.
	found := false
	for _, term := range p.Neighbors(0) {
		if term.Other == 2 {
			found = true
			if term.W != 4 {
				t.Errorf("adjacency weight = %v, want 4", term.W)
			}
		}
	}
	if !found {
		t.Error("adjacency missing coupling (0,2)")
	}
	if p.NumQuadratic() != 1 {
		t.Errorf("NumQuadratic = %d, want 1", p.NumQuadratic())
	}
}

func TestAddQuadraticDiagonalFoldsToLinear(t *testing.T) {
	p := New(2)
	p.AddQuadratic(1, 1, 3)
	if got := p.Linear(1); got != 3 {
		t.Errorf("Linear(1) = %v, want 3 (x² = x for binary x)", got)
	}
}

func TestSolveExhaustiveKnownMinimum(t *testing.T) {
	// E = -x0 - x1 + 3·x0·x1: minimum at exactly one variable set, E = -1.
	p := New(2)
	p.AddLinear(0, -1)
	p.AddLinear(1, -1)
	p.AddQuadratic(0, 1, 3)
	x, e, err := p.SolveExhaustive(0)
	if err != nil {
		t.Fatal(err)
	}
	if e != -1 {
		t.Errorf("min energy = %v, want -1", e)
	}
	if x[0] == x[1] {
		t.Errorf("minimizer = %v, want exactly one bit set", x)
	}
}

func TestSolveExhaustiveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(12)
		p := randomProblem(rng, n, 0.5)
		_, got, err := p.SolveExhaustive(0)
		if err != nil {
			t.Fatal(err)
		}
		// Naive enumeration without Gray codes.
		want := math.Inf(1)
		x := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range x {
				x[i] = mask&(1<<i) != 0
			}
			if e := p.Energy(x); e < want {
				want = e
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: exhaustive min %v != naive min %v", trial, got, want)
		}
	}
}

func TestSolveExhaustiveTooLarge(t *testing.T) {
	p := New(30)
	if _, _, err := p.SolveExhaustive(0); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 1+rng.Intn(10), 0.5)
		_, e, err := p.SolveExhaustive(0)
		if err != nil {
			t.Fatal(err)
		}
		if lb := p.LowerBound(); lb > e+1e-9 {
			t.Fatalf("trial %d: LowerBound %v exceeds true minimum %v", trial, lb, e)
		}
	}
}

func TestGreedyDescentReachesLocalMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomProblem(rng, 15, 0.4)
	x := make([]bool, 15)
	for i := range x {
		x[i] = rng.Intn(2) == 1
	}
	e := p.GreedyDescent(x)
	for i := 0; i < p.N(); i++ {
		if d := p.FlipDelta(x, i); d < -1e-9 {
			t.Fatalf("descent left improving flip at %d (delta %v)", i, d)
		}
	}
	if math.Abs(e-p.Energy(x)) > 1e-9 {
		t.Errorf("returned energy %v != recomputed %v", e, p.Energy(x))
	}
}

func TestClone(t *testing.T) {
	p := New(3)
	p.AddLinear(0, 1)
	p.AddQuadratic(0, 1, -2)
	p.Offset = 7
	c := p.Clone()
	c.AddLinear(0, 5)
	c.AddQuadratic(0, 1, 5)
	if p.Linear(0) != 1 || p.Quadratic(0, 1) != -2 {
		t.Error("Clone is not independent of original")
	}
	if c.Offset != 7 {
		t.Errorf("Clone lost offset: %v", c.Offset)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	p := New(2)
	for name, fn := range map[string]func(){
		"linear out of range": func() { p.AddLinear(2, 1) },
		"quad out of range":   func() { p.AddQuadratic(0, -1, 1) },
		"energy wrong length": func() { p.Energy([]bool{true}) },
		"negative size":       func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
