package qubo

import (
	"errors"
	"math"
)

// ErrTooLarge reports that an exact QUBO solver was invoked beyond its
// safety bound.
var ErrTooLarge = errors.New("qubo: instance too large for exact solver")

// SolveExhaustive enumerates all 2^n assignments (n ≤ maxVars, default 24)
// and returns a minimizer with its energy. Used to verify the logical and
// physical mappings (Theorem 1) on small instances.
func (p *Problem) SolveExhaustive(maxVars int) ([]bool, float64, error) {
	if maxVars <= 0 {
		maxVars = 24
	}
	if p.n > maxVars {
		return nil, 0, ErrTooLarge
	}
	best := make([]bool, p.n)
	bestE := math.Inf(1)
	x := make([]bool, p.n)
	// Gray-code enumeration with incremental deltas: each step flips one
	// variable, so evaluation is O(deg) instead of O(n + |quad|).
	e := p.Energy(x)
	if e < bestE {
		bestE = e
		copy(best, x)
	}
	total := uint64(1) << uint(p.n)
	for k := uint64(1); k < total; k++ {
		// The bit flipped between Gray codes of k-1 and k is trailing-zeros(k).
		i := trailingZeros(k)
		e += p.FlipDelta(x, i)
		x[i] = !x[i]
		if e < bestE {
			bestE = e
			copy(best, x)
		}
	}
	return best, bestE, nil
}

func trailingZeros(k uint64) int {
	n := 0
	for k&1 == 0 {
		k >>= 1
		n++
	}
	return n
}

// LowerBound returns a cheap lower bound on the minimal energy: the sum of
// all negative linear weights plus all negative couplings plus the offset.
// Exact solvers use it for sanity checks and branch-and-bound seeds.
func (p *Problem) LowerBound() float64 {
	lb := p.Offset
	for _, w := range p.linear {
		if w < 0 {
			lb += w
		}
	}
	for _, w := range p.quad {
		if w < 0 {
			lb += w
		}
	}
	return lb
}

// GreedyDescent performs steepest-descent bit flips from x until no flip
// improves the energy, mutating x. It returns the final energy. This is the
// classical post-processing step applied to annealer read-outs.
func (p *Problem) GreedyDescent(x []bool) float64 {
	for {
		bestI := -1
		bestD := -1e-12 // require strict improvement beyond noise
		for i := 0; i < p.n; i++ {
			if d := p.FlipDelta(x, i); d < bestD {
				bestD = d
				bestI = i
			}
		}
		if bestI < 0 {
			return p.Energy(x)
		}
		x[bestI] = !x[bestI]
	}
}

// FirstImprovementDescent sweeps over the variables flipping any strictly
// improving bit until a full sweep finds none (or maxSweeps is exhausted),
// mutating x. It is the cheap post-processing variant used on annealer
// read-outs with broken chains: O(n·deg) per sweep instead of the
// steepest-descent O(n·deg) per single flip.
func (p *Problem) FirstImprovementDescent(x []bool, maxSweeps int) {
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for i := 0; i < p.n; i++ {
			if p.FlipDelta(x, i) < -1e-12 {
				x[i] = !x[i]
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}
