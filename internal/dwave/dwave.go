// Package dwave simulates the D-Wave 2X device interface used in the
// paper's evaluation (Section 7.1): batched annealing runs with one random
// gauge transformation per batch, a fixed per-run annealing time of 129 µs
// and read-out time of 247 µs, and one spin read-out per run.
//
// The real hardware is unavailable to this reproduction, so the annealing
// cycle itself is performed by a sampler from internal/anneal (simulated
// annealing or simulated quantum annealing) on the identical physical
// Ising input. Elapsed device time is modeled: every run advances a
// modeled clock by the hardware constants, preserving the time axis of
// the paper's figures independently of simulation wall-clock time.
//
// Gauge batches are independent by construction — the paper's protocol
// draws a fresh random gauge every RunsPerGauge runs precisely so batches
// decorrelate — which makes them the natural unit of parallelism. Each
// batch samples from its own random stream derived by SplitMix64 from the
// session seed and the batch index, so spins, energies, and the modeled
// device clock are bit-identical at any worker count.
package dwave

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"repro/internal/anneal"
	"repro/internal/exec"
	"repro/internal/ising"
	"repro/internal/splitmix"
)

// Paper timing constants (Section 7.1).
const (
	// PaperAnnealTime is the default annealing time per run.
	PaperAnnealTime = 129 * time.Microsecond
	// PaperReadoutTime is the read-out time per run.
	PaperReadoutTime = 247 * time.Microsecond
	// PaperRunsPerGauge is the number of annealing runs per gauge
	// transformation (10 batches of 100 runs = 1000 runs per test case).
	PaperRunsPerGauge = 100
	// PaperTotalRuns is the number of annealing runs per test case.
	PaperTotalRuns = 1000
)

// Device is a simulated quantum annealer.
type Device struct {
	// Sampler performs the annealing cycle. It must be safe for
	// concurrent use with distinct rand.Rand instances (the built-in
	// samplers are configuration-only and qualify).
	Sampler anneal.Sampler
	// AnnealTime and ReadoutTime are charged to the modeled clock per run.
	AnnealTime, ReadoutTime time.Duration
	// RunsPerGauge is the batch size between gauge transformations.
	RunsPerGauge int
	// DisableGauges samples every run in the identity gauge (used by the
	// gauge ablation; the paper uses 10 random gauges per test case to
	// cancel qubit biases).
	DisableGauges bool
	// Parallelism bounds how many gauge batches sample concurrently;
	// non-positive uses one worker per CPU. Output is identical at every
	// setting — only wall-clock changes.
	Parallelism int
	// Warm, when non-nil and the Sampler implements anneal.WarmSampler,
	// starts every annealing run from this packed identity-gauge spin
	// state (bit set ⇔ spin −1, WordsFor(N) words, trailing bits clear)
	// instead of a uniform draw — the surrogate for hardware reverse
	// annealing from a previous incumbent. Each gauge batch XORs the
	// state into its own gauge before sampling. Warm runs draw a
	// different rng sequence than cold runs (see anneal.WarmSampler);
	// results remain bit-identical at any parallelism for a fixed
	// (seed, Warm) pair.
	Warm []uint64
}

// DefaultSampler returns the annealing surrogate used by default:
// classical simulated annealing (the SQA surrogate is available for the
// sampler ablation).
func DefaultSampler() anneal.Sampler { return anneal.DefaultSA() }

// NewDWave2X returns a device with the paper's timing and batching
// parameters.
func NewDWave2X(s anneal.Sampler) *Device {
	return &Device{
		Sampler:      s,
		AnnealTime:   PaperAnnealTime,
		ReadoutTime:  PaperReadoutTime,
		RunsPerGauge: PaperRunsPerGauge,
	}
}

// deviceParams is the per-generation timing/batching table behind
// NewDeviceFor. Every generation currently charges the 2X constants:
// the cross-topology harness compares qubit footprint, chain length,
// and time-to-best on ONE modeled clock, so differences are attributable
// to connectivity alone (and the budget→runs policy, RunsForBudget,
// stays consistent for every kind). A calibrated device generation —
// Advantage's 20 µs anneals, say — would change exactly this row.
type deviceParams struct {
	annealTime, readoutTime time.Duration
	runsPerGauge            int
}

var deviceTable = map[string]deviceParams{
	"chimera": {PaperAnnealTime, PaperReadoutTime, PaperRunsPerGauge},
	"pegasus": {PaperAnnealTime, PaperReadoutTime, PaperRunsPerGauge},
	"zephyr":  {PaperAnnealTime, PaperReadoutTime, PaperRunsPerGauge},
}

// NewDeviceFor returns the simulated device for the annealer generation
// carrying the given topology kind ("chimera" selects exactly the
// paper's D-Wave 2X; unknown kinds get the 2X defaults too, so an
// experimental topology still solves).
func NewDeviceFor(kind string, s anneal.Sampler) *Device {
	p, ok := deviceTable[kind]
	if !ok {
		return NewDWave2X(s)
	}
	return &Device{
		Sampler:      s,
		AnnealTime:   p.annealTime,
		ReadoutTime:  p.readoutTime,
		RunsPerGauge: p.runsPerGauge,
	}
}

// TimePerSample is the modeled device time per annealing run + read-out.
func (d *Device) TimePerSample() time.Duration { return d.AnnealTime + d.ReadoutTime }

// Sample is one read-out: the spins (in the problem's original gauge) and
// their energy.
type Sample struct {
	Spins  []int8
	Energy float64
	// Elapsed is the modeled device time when this read-out completed.
	Elapsed time.Duration
}

// Batch describes one gauge batch of a sampling session: Runs annealing
// runs under a single gauge transformation, drawn from the batch's
// private random stream.
type Batch struct {
	// Index is the batch position within the session.
	Index int
	// Start is the global run index of the batch's first run; run
	// Start+j completes at modeled time (Start+j+1)·TimePerSample.
	Start int
	// Runs is the number of annealing runs in this batch.
	Runs int
	// Seed seeds the batch's private random stream (gauge + anneals).
	Seed int64
}

// Batches splits a session of runs annealing runs (non-positive selects
// the paper's 1000) into gauge batches of RunsPerGauge runs each, with
// per-batch sub-seeds split from seed. The split is position-based, so
// the schedule — and therefore every downstream read-out — is independent
// of how many batches later execute concurrently.
func (d *Device) Batches(runs int, seed int64) []Batch {
	if runs <= 0 {
		runs = PaperTotalRuns
	}
	size := d.RunsPerGauge
	if size <= 0 {
		size = PaperRunsPerGauge
	}
	batches := make([]Batch, 0, (runs+size-1)/size)
	for start := 0; start < runs; start += size {
		n := size
		if start+n > runs {
			n = runs - start
		}
		batches = append(batches, Batch{
			Index: len(batches),
			Start: start,
			Runs:  n,
			Seed:  splitmix.Split(seed, int64(len(batches))),
		})
	}
	return batches
}

// Readout is one streamed annealing read-out: the packed spins (bit set
// ⇔ spin −1, anneal's convention) already undone into the problem's
// original gauge, their energy, and the modeled completion time. The
// Words view aliases the worker's Scratch and is valid ONLY during the
// StreamBatch yield that delivered it — consumers decode-then-discard,
// copying out only what they keep (an incumbent, a materialized Sample).
type Readout struct {
	Words   []uint64
	Energy  float64
	Elapsed time.Duration
}

// Scratch is the per-worker arena of a sampling session: the sampler's
// kernel arena plus the packed gauge mask and the original-gauge
// read-out buffer. One worker owns it at a time and reuses it across
// every run of every batch it executes, so steady-state runs allocate
// nothing. The zero value is ready to use.
type Scratch struct {
	kernel anneal.Scratch
	gauge  []uint64
	orig   []uint64
	warm   []uint64
}

// grow sizes the packed buffers for n spins.
func (sc *Scratch) grow(n int) {
	w := anneal.WordsFor(n)
	if cap(sc.gauge) < w {
		sc.gauge = make([]uint64, w)
		sc.orig = make([]uint64, w)
		sc.warm = make([]uint64, w)
	}
	sc.gauge = sc.gauge[:w]
	sc.orig = sc.orig[:w]
	sc.warm = sc.warm[:w]
}

// StreamBatch executes one gauge batch sequentially, yielding each
// read-out in run order through sc without materializing any of them.
// Spins and energies are expressed in the problem's original gauge.
// original is p compiled in the identity gauge; sessions compile it once
// and share it across batches (nil compiles on the spot). The batch is
// deterministic in b alone, which is what lets it run on any worker
// without changing results. A cancelled ctx stops between runs; yield
// returning false aborts the remainder.
func (d *Device) StreamBatch(ctx context.Context, p *ising.Problem, original *anneal.Compiled, b Batch, sc *Scratch, yield func(Readout) bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(b.Seed))
	gauge := ising.RandomGauge(rng, p.N())
	if d.DisableGauges {
		gauge = ising.IdentityGauge(p.N())
	}
	if original == nil {
		original = anneal.Compile(p)
	}
	// Transform the shared identity-gauge program directly in CSR form:
	// cheaper than rebuilding the Ising problem per batch, and the
	// inherited neighbor order keeps rounding — and therefore read-outs
	// — identical across gauge representations.
	compiled := original.ApplyGauge(gauge.Flip)
	sc.grow(p.N())
	anneal.PackBools(gauge.Flip, sc.gauge)
	// Warm start: the caller's identity-gauge incumbent state, expressed
	// in this batch's gauge. Gauging negates the flipped spins, which in
	// packed form is a word-wise XOR against the gauge mask.
	warmSampler, _ := d.Sampler.(anneal.WarmSampler)
	useWarm := warmSampler != nil && d.Warm != nil
	if useWarm {
		for w := range sc.warm {
			sc.warm[w] = d.Warm[w] ^ sc.gauge[w]
		}
	}
	perSample := d.TimePerSample()
	for j := 0; j < b.Runs; j++ {
		if ctx.Err() != nil {
			return
		}
		if useWarm {
			warmSampler.SampleWarmInto(compiled, rng, &sc.kernel, sc.warm)
		} else {
			d.Sampler.SampleInto(compiled, rng, &sc.kernel)
		}
		// Undoing the gauge negates the flipped spins; in packed form
		// (bit ⇔ −1) that is a word-wise XOR against the gauge mask.
		words := sc.kernel.Words()
		for w := range sc.orig {
			sc.orig[w] = words[w] ^ sc.gauge[w]
		}
		ro := Readout{
			Words:   sc.orig,
			Energy:  original.PackedEnergy(sc.orig),
			Elapsed: time.Duration(b.Start+j+1) * perSample,
		}
		if !yield(ro) {
			return
		}
	}
}

// SampleBatch executes one gauge batch sequentially and returns its
// read-outs materialized in run order — the convenience form of
// StreamBatch for consumers that keep whole batches. A cancelled ctx
// stops between runs, returning the read-outs completed so far.
func (d *Device) SampleBatch(ctx context.Context, p *ising.Problem, original *anneal.Compiled, b Batch) []Sample {
	out := make([]Sample, 0, b.Runs)
	var sc Scratch
	d.StreamBatch(ctx, p, original, b, &sc, func(ro Readout) bool {
		spins := make([]int8, p.N())
		anneal.UnpackSpins(ro.Words, spins)
		out = append(out, Sample{Spins: spins, Energy: ro.Energy, Elapsed: ro.Elapsed})
		return true
	})
	return out
}

// SampleIsing performs runs annealing cycles on p (non-positive selects
// the paper's 1000), applying a fresh random gauge transformation every
// RunsPerGauge runs ("a gauge transformation selects for each qubit the
// physical state representing a one randomly"). Batches are sampled
// concurrently under d.Parallelism; the onSample callback, if non-nil,
// still observes every read-out in strict run order — returning false
// aborts the undelivered remainder (the hook context-aware callers use to
// cancel mid-flight), and a cancelled ctx stops scheduling promptly. The
// best sample seen is returned; for a fixed seed it is bit-identical at
// any parallelism.
func (d *Device) SampleIsing(ctx context.Context, p *ising.Problem, runs int, seed int64, onSample func(Sample) bool) Sample {
	batches := d.Batches(runs, seed)
	original := anneal.Compile(p)
	best := Sample{}
	haveBest := false
	var err error
	if onSample == nil {
		// Streaming path: no caller observes individual read-outs, so
		// nothing is materialized. Workers stream batches through
		// per-worker arenas and keep only each batch's incumbent (first
		// run achieving the batch minimum — copied out of the scratch on
		// strict improvement only); the in-order merge keeps the first
		// batch achieving the global minimum, which is exactly the run
		// the materializing scan would have kept.
		type batchBest struct {
			words   []uint64
			energy  float64
			elapsed time.Duration
			have    bool
		}
		scratches := make([]Scratch, exec.Parallelism(d.Parallelism))
		var bestWords []uint64
		err = exec.ForEachOrdered(ctx, d.Parallelism, len(batches),
			func(tctx context.Context, i int) (*batchBest, error) {
				sc := &scratches[exec.WorkerID(tctx)]
				bb := &batchBest{}
				d.StreamBatch(tctx, p, original, batches[i], sc, func(ro Readout) bool {
					if !bb.have || ro.Energy < bb.energy {
						bb.words = append(bb.words[:0], ro.Words...)
						bb.energy = ro.Energy
						bb.elapsed = ro.Elapsed
						bb.have = true
					}
					return true
				})
				return bb, nil
			},
			func(_ int, bb *batchBest) bool {
				if bb.have && (!haveBest || bb.energy < best.Energy) {
					bestWords = append(bestWords[:0], bb.words...)
					best.Energy = bb.energy
					best.Elapsed = bb.elapsed
					haveBest = true
				}
				return true
			})
		if haveBest {
			best.Spins = make([]int8, p.N())
			anneal.UnpackSpins(bestWords, best.Spins)
		}
	} else {
		// Materializing path: the callback may retain delivered Samples,
		// so each batch is materialized and streamed to it in run order.
		err = exec.ForEachOrdered(ctx, d.Parallelism, len(batches),
			func(tctx context.Context, i int) ([]Sample, error) {
				return d.SampleBatch(tctx, p, original, batches[i]), nil
			},
			func(_ int, samples []Sample) bool {
				for _, s := range samples {
					keepGoing := onSample(s)
					if !haveBest || s.Energy < best.Energy {
						best = s
						haveBest = true
					}
					if !keepGoing {
						return false
					}
				}
				return true
			})
	}
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// The batch tasks never return errors, so anything besides a
		// cancellation is a captured worker panic; re-raise it rather
		// than silently returning a zero-value best sample.
		panic(err)
	}
	return best
}
