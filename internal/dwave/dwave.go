// Package dwave simulates the D-Wave 2X device interface used in the
// paper's evaluation (Section 7.1): batched annealing runs with one random
// gauge transformation per batch, a fixed per-run annealing time of 129 µs
// and read-out time of 247 µs, and one spin read-out per run.
//
// The real hardware is unavailable to this reproduction, so the annealing
// cycle itself is performed by a sampler from internal/anneal (simulated
// annealing or simulated quantum annealing) on the identical physical
// Ising input. Elapsed device time is modeled: every run advances a
// modeled clock by the hardware constants, preserving the time axis of
// the paper's figures independently of simulation wall-clock time.
package dwave

import (
	"math/rand"
	"time"

	"repro/internal/anneal"
	"repro/internal/ising"
)

// Paper timing constants (Section 7.1).
const (
	// PaperAnnealTime is the default annealing time per run.
	PaperAnnealTime = 129 * time.Microsecond
	// PaperReadoutTime is the read-out time per run.
	PaperReadoutTime = 247 * time.Microsecond
	// PaperRunsPerGauge is the number of annealing runs per gauge
	// transformation (10 batches of 100 runs = 1000 runs per test case).
	PaperRunsPerGauge = 100
	// PaperTotalRuns is the number of annealing runs per test case.
	PaperTotalRuns = 1000
)

// Device is a simulated quantum annealer.
type Device struct {
	// Sampler performs the annealing cycle.
	Sampler anneal.Sampler
	// AnnealTime and ReadoutTime are charged to the modeled clock per run.
	AnnealTime, ReadoutTime time.Duration
	// RunsPerGauge is the batch size between gauge transformations.
	RunsPerGauge int
	// DisableGauges samples every run in the identity gauge (used by the
	// gauge ablation; the paper uses 10 random gauges per test case to
	// cancel qubit biases).
	DisableGauges bool
}

// DefaultSampler returns the annealing surrogate used by default:
// classical simulated annealing (the SQA surrogate is available for the
// sampler ablation).
func DefaultSampler() anneal.Sampler { return anneal.DefaultSA() }

// NewDWave2X returns a device with the paper's timing and batching
// parameters.
func NewDWave2X(s anneal.Sampler) *Device {
	return &Device{
		Sampler:      s,
		AnnealTime:   PaperAnnealTime,
		ReadoutTime:  PaperReadoutTime,
		RunsPerGauge: PaperRunsPerGauge,
	}
}

// TimePerSample is the modeled device time per annealing run + read-out.
func (d *Device) TimePerSample() time.Duration { return d.AnnealTime + d.ReadoutTime }

// Sample is one read-out: the spins (in the problem's original gauge) and
// their energy.
type Sample struct {
	Spins  []int8
	Energy float64
	// Elapsed is the modeled device time when this read-out completed.
	Elapsed time.Duration
}

// SampleIsing performs runs annealing cycles on p, applying a fresh random
// gauge transformation every RunsPerGauge runs ("a gauge transformation
// selects for each qubit the physical state representing a one randomly").
// The onSample callback, if non-nil, observes every read-out in order;
// returning false aborts the remaining runs (the hook context-aware
// callers use to cancel a batch mid-flight). The best sample seen is
// returned.
func (d *Device) SampleIsing(p *ising.Problem, runs int, rng *rand.Rand, onSample func(Sample) bool) Sample {
	if runs <= 0 {
		runs = PaperTotalRuns
	}
	batch := d.RunsPerGauge
	if batch <= 0 {
		batch = PaperRunsPerGauge
	}
	original := anneal.Compile(p)
	var elapsed time.Duration
	best := Sample{}
	haveBest := false
	for done := 0; done < runs; {
		gauge := ising.RandomGauge(rng, p.N())
		if d.DisableGauges {
			gauge = ising.IdentityGauge(p.N())
		}
		compiled := anneal.Compile(p.ApplyGauge(gauge))
		for b := 0; b < batch && done < runs; b++ {
			spins := d.Sampler.Sample(compiled, rng)
			orig := gauge.UndoSpins(spins)
			elapsed += d.TimePerSample()
			s := Sample{Spins: orig, Energy: original.Energy(orig), Elapsed: elapsed}
			keepGoing := true
			if onSample != nil {
				keepGoing = onSample(s)
			}
			if !haveBest || s.Energy < best.Energy {
				best = s
				haveBest = true
			}
			done++
			if !keepGoing {
				return best
			}
		}
	}
	return best
}
