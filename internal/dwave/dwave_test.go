package dwave

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/ising"
	"repro/internal/qubo"
)

func trivialProblem(n int) *ising.Problem {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, -1)
	}
	return ising.FromQUBO(q)
}

func TestTimingModel(t *testing.T) {
	d := NewDWave2X(DefaultSampler())
	if d.TimePerSample() != 376*time.Microsecond {
		t.Errorf("TimePerSample = %v, want 376µs (129 anneal + 247 readout)", d.TimePerSample())
	}
	p := trivialProblem(4)
	var elapsed []time.Duration
	d.SampleIsing(context.Background(), p, 5, 1, func(s Sample) bool {
		elapsed = append(elapsed, s.Elapsed)
		return true
	})
	if len(elapsed) != 5 {
		t.Fatalf("observed %d samples, want 5", len(elapsed))
	}
	for i, e := range elapsed {
		if want := time.Duration(i+1) * 376 * time.Microsecond; e != want {
			t.Errorf("sample %d elapsed %v, want %v", i, e, want)
		}
	}
}

func TestFindsTrivialGroundState(t *testing.T) {
	d := NewDWave2X(DefaultSampler())
	p := trivialProblem(10)
	best := d.SampleIsing(context.Background(), p, 20, 2, nil)
	// Ground: all spins +1, energy = offset-adjusted -10.
	c := anneal.Compile(p)
	all1 := make([]int8, 10)
	for i := range all1 {
		all1[i] = 1
	}
	want := c.Energy(all1)
	if math.Abs(best.Energy-want) > 1e-9 {
		t.Errorf("best energy %v, want %v", best.Energy, want)
	}
}

func TestGaugeBatching(t *testing.T) {
	// With RunsPerGauge = 2 and 5 runs, three gauges are drawn. The
	// returned energies must all be evaluated in the ORIGINAL frame:
	// verify each sample's energy matches its spins.
	d := NewDWave2X(DefaultSampler())
	d.RunsPerGauge = 2
	p := trivialProblem(6)
	c := anneal.Compile(p)
	n := 0
	d.SampleIsing(context.Background(), p, 5, 3, func(s Sample) bool {
		n++
		if math.Abs(c.Energy(s.Spins)-s.Energy) > 1e-9 {
			t.Errorf("sample energy %v does not match spins (%v)", s.Energy, c.Energy(s.Spins))
		}
		return true
	})
	if n != 5 {
		t.Errorf("callback saw %d samples, want 5", n)
	}
}

func TestBatchesSchedule(t *testing.T) {
	d := NewDWave2X(DefaultSampler())
	d.RunsPerGauge = 100
	batches := d.Batches(250, 7)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	wantRuns := []int{100, 100, 50}
	start := 0
	seeds := map[int64]bool{}
	for i, b := range batches {
		if b.Index != i || b.Start != start || b.Runs != wantRuns[i] {
			t.Errorf("batch %d = %+v, want Start %d Runs %d", i, b, start, wantRuns[i])
		}
		if seeds[b.Seed] {
			t.Errorf("batch %d reuses seed %d", i, b.Seed)
		}
		seeds[b.Seed] = true
		start += b.Runs
	}
	if d.Batches(0, 7)[0].Runs != PaperRunsPerGauge {
		t.Error("default session not split into paper-size batches")
	}
}

func TestBestSampleIsMinimum(t *testing.T) {
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 2, BetaStart: 0.1, BetaEnd: 1})
	rng := rand.New(rand.NewSource(4))
	q := qubo.New(8)
	for i := 0; i < 8; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < 8; j++ {
			q.AddQuadratic(i, j, rng.NormFloat64())
		}
	}
	p := ising.FromQUBO(q)
	var seen []float64
	best := d.SampleIsing(context.Background(), p, 30, 4, func(s Sample) bool { seen = append(seen, s.Energy); return true })
	for _, e := range seen {
		if e < best.Energy-1e-12 {
			t.Errorf("best %v not minimal (saw %v)", best.Energy, e)
		}
	}
}

func TestDefaultRunsApplied(t *testing.T) {
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 1, BetaStart: 1, BetaEnd: 1})
	p := trivialProblem(2)
	n := 0
	d.SampleIsing(context.Background(), p, 0, 5, func(Sample) bool { n++; return true })
	if n != PaperTotalRuns {
		t.Errorf("default runs = %d, want %d", n, PaperTotalRuns)
	}
}

func TestSampleIsingAbortsWhenCallbackReturnsFalse(t *testing.T) {
	for _, par := range []int{1, 4} {
		d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 1, BetaStart: 1, BetaEnd: 1})
		d.RunsPerGauge = 10
		d.Parallelism = par
		p := trivialProblem(2)
		n := 0
		d.SampleIsing(context.Background(), p, 100, 6, func(Sample) bool {
			n++
			return n < 7
		})
		if n != 7 {
			t.Errorf("parallelism %d: callback ran %d times after requesting abort at 7", par, n)
		}
	}
}

// collectSession runs a full session and returns every read-out in
// delivery order.
func collectSession(d *Device, p *ising.Problem, runs int, seed int64) []Sample {
	var out []Sample
	d.SampleIsing(context.Background(), p, runs, seed, func(s Sample) bool {
		cp := s
		cp.Spins = append([]int8(nil), s.Spins...)
		out = append(out, cp)
		return true
	})
	return out
}

func TestSampleIsingDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := qubo.New(12)
	for i := 0; i < 12; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < 12; j++ {
			q.AddQuadratic(i, j, rng.NormFloat64())
		}
	}
	p := ising.FromQUBO(q)

	reference := func(par int) []Sample {
		d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 4, BetaStart: 0.1, BetaEnd: 4})
		d.RunsPerGauge = 25
		d.Parallelism = par
		return collectSession(d, p, 130, 42)
	}
	want := reference(1)
	if len(want) != 130 {
		t.Fatalf("sequential session yielded %d samples", len(want))
	}
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		got := reference(par)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: spins/energies/clock diverge from sequential run", par)
		}
	}
	// A different seed must change the stream (the split is not constant).
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 4, BetaStart: 0.1, BetaEnd: 4})
	d.RunsPerGauge = 25
	if other := collectSession(d, p, 130, 43); reflect.DeepEqual(other, want) {
		t.Error("seed 42 and 43 produced identical sessions")
	}
}

func TestSampleIsingCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 1, BetaStart: 1, BetaEnd: 1})
	d.RunsPerGauge = 10
	d.Parallelism = 4
	p := trivialProblem(2)
	n := 0
	best := d.SampleIsing(ctx, p, 1000, 8, func(Sample) bool {
		n++
		if n == 25 {
			cancel()
		}
		return true
	})
	if n >= 1000 {
		t.Errorf("cancellation did not stop the session (saw %d read-outs)", n)
	}
	if len(best.Spins) == 0 {
		t.Error("cancelled session lost the best-so-far sample")
	}
}

func TestNewDeviceFor(t *testing.T) {
	want := NewDWave2X(DefaultSampler())
	for _, kind := range []string{"chimera", "pegasus", "zephyr", "experimental-unknown"} {
		d := NewDeviceFor(kind, DefaultSampler())
		if d.AnnealTime != want.AnnealTime || d.ReadoutTime != want.ReadoutTime || d.RunsPerGauge != want.RunsPerGauge {
			t.Fatalf("%s: device params diverge from the 2X table row", kind)
		}
	}
}
