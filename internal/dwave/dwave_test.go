package dwave

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/ising"
	"repro/internal/qubo"
)

func trivialProblem(n int) *ising.Problem {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, -1)
	}
	return ising.FromQUBO(q)
}

func TestTimingModel(t *testing.T) {
	d := NewDWave2X(DefaultSampler())
	if d.TimePerSample() != 376*time.Microsecond {
		t.Errorf("TimePerSample = %v, want 376µs (129 anneal + 247 readout)", d.TimePerSample())
	}
	p := trivialProblem(4)
	rng := rand.New(rand.NewSource(1))
	var elapsed []time.Duration
	d.SampleIsing(p, 5, rng, func(s Sample) bool {
		elapsed = append(elapsed, s.Elapsed)
		return true
	})
	if len(elapsed) != 5 {
		t.Fatalf("observed %d samples, want 5", len(elapsed))
	}
	for i, e := range elapsed {
		if want := time.Duration(i+1) * 376 * time.Microsecond; e != want {
			t.Errorf("sample %d elapsed %v, want %v", i, e, want)
		}
	}
}

func TestFindsTrivialGroundState(t *testing.T) {
	d := NewDWave2X(DefaultSampler())
	p := trivialProblem(10)
	best := d.SampleIsing(p, 20, rand.New(rand.NewSource(2)), nil)
	// Ground: all spins +1, energy = offset-adjusted -10.
	want := math.Inf(1)
	c := anneal.Compile(p)
	all1 := make([]int8, 10)
	for i := range all1 {
		all1[i] = 1
	}
	want = c.Energy(all1)
	if math.Abs(best.Energy-want) > 1e-9 {
		t.Errorf("best energy %v, want %v", best.Energy, want)
	}
}

func TestGaugeBatching(t *testing.T) {
	// With RunsPerGauge = 2 and 5 runs, three gauges are drawn. The
	// returned energies must all be evaluated in the ORIGINAL frame:
	// verify each sample's energy matches its spins.
	d := NewDWave2X(DefaultSampler())
	d.RunsPerGauge = 2
	p := trivialProblem(6)
	c := anneal.Compile(p)
	rng := rand.New(rand.NewSource(3))
	n := 0
	d.SampleIsing(p, 5, rng, func(s Sample) bool {
		n++
		if math.Abs(c.Energy(s.Spins)-s.Energy) > 1e-9 {
			t.Errorf("sample energy %v does not match spins (%v)", s.Energy, c.Energy(s.Spins))
		}
		return true
	})
	if n != 5 {
		t.Errorf("callback saw %d samples, want 5", n)
	}
}

func TestBestSampleIsMinimum(t *testing.T) {
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 2, BetaStart: 0.1, BetaEnd: 1})
	rng := rand.New(rand.NewSource(4))
	q := qubo.New(8)
	for i := 0; i < 8; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < 8; j++ {
			q.AddQuadratic(i, j, rng.NormFloat64())
		}
	}
	p := ising.FromQUBO(q)
	var seen []float64
	best := d.SampleIsing(p, 30, rng, func(s Sample) bool { seen = append(seen, s.Energy); return true })
	for _, e := range seen {
		if e < best.Energy-1e-12 {
			t.Errorf("best %v not minimal (saw %v)", best.Energy, e)
		}
	}
}

func TestDefaultRunsApplied(t *testing.T) {
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 1, BetaStart: 1, BetaEnd: 1})
	p := trivialProblem(2)
	n := 0
	d.SampleIsing(p, 0, rand.New(rand.NewSource(5)), func(Sample) bool { n++; return true })
	if n != PaperTotalRuns {
		t.Errorf("default runs = %d, want %d", n, PaperTotalRuns)
	}
}

func TestSampleIsingAbortsWhenCallbackReturnsFalse(t *testing.T) {
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 1, BetaStart: 1, BetaEnd: 1})
	p := trivialProblem(2)
	n := 0
	d.SampleIsing(p, 100, rand.New(rand.NewSource(6)), func(Sample) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("callback ran %d times after requesting abort at 7", n)
	}
}
