package dwave

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/anneal"
)

// TestWarmStartGaugeRoundTrip pins the gauge algebra of the warm path:
// with a zero-sweep sampler every run reads out exactly its initial
// state, so the original-gauge read-out must equal the warm words for
// EVERY random gauge (warm ⊕ gauge sampled, then ⊕ gauge undone).
func TestWarmStartGaugeRoundTrip(t *testing.T) {
	p := trivialProblem(70)
	d := NewDWave2X(&anneal.SimulatedAnnealer{Sweeps: 0, BetaStart: 0.1, BetaEnd: 8})
	warm := make([]uint64, anneal.WordsFor(p.N()))
	anneal.RandomSpinsInto(rand.New(rand.NewSource(21)), p.N(), warm)
	d.Warm = warm

	var sc Scratch
	for _, b := range d.Batches(300, 5) {
		d.StreamBatch(context.Background(), p, nil, b, &sc, func(ro Readout) bool {
			for w := range warm {
				if ro.Words[w] != warm[w] {
					t.Fatalf("batch %d: zero-sweep warm read-out diverges from warm state at word %d", b.Index, w)
				}
			}
			return true
		})
	}
}

// TestWarmStartDeterministicAtAnyParallelism extends the determinism
// contract to warm sessions: the best sample of a warm SampleIsing is
// bit-identical at 1 and many workers.
func TestWarmStartDeterministicAtAnyParallelism(t *testing.T) {
	p := trivialProblem(40)
	warm := make([]uint64, anneal.WordsFor(p.N()))
	anneal.RandomSpinsInto(rand.New(rand.NewSource(2)), p.N(), warm)

	run := func(parallelism int) Sample {
		d := NewDWave2X(anneal.DefaultSA())
		d.Warm = warm
		d.Parallelism = parallelism
		return d.SampleIsing(context.Background(), p, 500, 9, nil)
	}
	a, b := run(1), run(8)
	if a.Energy != b.Energy || a.Elapsed != b.Elapsed {
		t.Fatalf("warm solve diverges across parallelism: (%v, %v) vs (%v, %v)",
			a.Energy, a.Elapsed, b.Energy, b.Elapsed)
	}
	for i := range a.Spins {
		if a.Spins[i] != b.Spins[i] {
			t.Fatalf("warm solve spins diverge at %d", i)
		}
	}
}

// TestWarmIgnoredWithoutWarmSampler: a sampler without warm support must
// fall back to the cold path bit-for-bit.
type coldOnly struct{ anneal.Sampler }

func (c coldOnly) Name() string { return "cold-only" }

func TestWarmIgnoredWithoutWarmSampler(t *testing.T) {
	p := trivialProblem(30)
	warm := make([]uint64, anneal.WordsFor(p.N()))
	warm[0] = ^uint64(0) >> 34 // arbitrary non-zero state

	cold := NewDWave2X(coldOnly{anneal.DefaultSA()})
	warmDev := NewDWave2X(coldOnly{anneal.DefaultSA()})
	warmDev.Warm = warm

	a := cold.SampleIsing(context.Background(), p, 200, 4, nil)
	b := warmDev.SampleIsing(context.Background(), p, 200, 4, nil)
	if a.Energy != b.Energy {
		t.Fatalf("Warm changed a non-warm sampler's result: %v vs %v", a.Energy, b.Energy)
	}
}
