// Package ising models Ising spin problems, the native formalism of the
// D-Wave hardware: minimize Σ_i h_i·s_i + Σ_{i<j} J_ij·s_i·s_j over spins
// s ∈ {−1,+1}^n. It converts to and from QUBO form (the formalism used by
// the paper's mappings), applies gauge transformations (Section 7.1), and
// rescales weights into hardware ranges.
package ising

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/qubo"
)

// Problem is an Ising instance: fields h, couplings J, and a constant
// Offset so energies remain comparable across transformations.
type Problem struct {
	n      int
	h      []float64
	j      map[[2]int]float64
	adj    [][]qubo.Term
	Offset float64
}

// New creates an empty Ising problem over n spins.
func New(n int) *Problem {
	if n < 0 {
		panic("ising: negative spin count")
	}
	return &Problem{
		n:   n,
		h:   make([]float64, n),
		j:   make(map[[2]int]float64),
		adj: make([][]qubo.Term, n),
	}
}

// N returns the number of spins.
func (p *Problem) N() int { return p.n }

// AddField adds w to the local field h_i.
func (p *Problem) AddField(i int, w float64) {
	p.check(i)
	p.h[i] += w
}

// AddCoupling adds w to the coupling J_ij between distinct spins.
func (p *Problem) AddCoupling(i, j int, w float64) {
	p.check(i)
	p.check(j)
	if i == j {
		panic("ising: self-coupling (s_i² = 1 is a constant; fold into Offset)")
	}
	if i > j {
		i, j = j, i
	}
	key := [2]int{i, j}
	old, existed := p.j[key]
	p.j[key] = old + w
	if existed {
		p.updateAdj(i, j, old+w)
		p.updateAdj(j, i, old+w)
	} else {
		p.adj[i] = append(p.adj[i], qubo.Term{Other: j, W: old + w})
		p.adj[j] = append(p.adj[j], qubo.Term{Other: i, W: old + w})
	}
}

func (p *Problem) updateAdj(i, j int, w float64) {
	for k := range p.adj[i] {
		if p.adj[i][k].Other == j {
			p.adj[i][k].W = w
			return
		}
	}
}

func (p *Problem) check(i int) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("ising: spin %d out of range [0,%d)", i, p.n))
	}
}

// Field returns h_i.
func (p *Problem) Field(i int) float64 { return p.h[i] }

// Coupling returns J_ij (0 if absent).
func (p *Problem) Coupling(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return p.j[[2]int{i, j}]
}

// Neighbors returns the couplings incident to spin i; shared slice.
func (p *Problem) Neighbors(i int) []qubo.Term { return p.adj[i] }

// Couplings returns all couplings sorted by (i, j).
func (p *Problem) Couplings() []qubo.Coupling {
	out := make([]qubo.Coupling, 0, len(p.j))
	for k, w := range p.j {
		out = append(out, qubo.Coupling{I: k[0], J: k[1], W: w})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Energy evaluates the Hamiltonian for spins s (entries must be ±1).
func (p *Problem) Energy(s []int8) float64 {
	if len(s) != p.n {
		panic(fmt.Sprintf("ising: assignment length %d != %d spins", len(s), p.n))
	}
	e := p.Offset
	for i, si := range s {
		e += p.h[i] * float64(si)
		for _, t := range p.adj[i] {
			if t.Other > i {
				e += t.W * float64(si) * float64(s[t.Other])
			}
		}
	}
	return e
}

// FlipDelta returns the energy change from flipping spin i.
func (p *Problem) FlipDelta(s []int8, i int) float64 {
	local := p.h[i]
	for _, t := range p.adj[i] {
		local += t.W * float64(s[t.Other])
	}
	return -2 * float64(s[i]) * local
}

// FromQUBO converts a QUBO problem into Ising form via x = (1+s)/2.
// Energies are preserved exactly, including the offset.
func FromQUBO(q *qubo.Problem) *Problem {
	p := New(q.N())
	p.Offset = q.Offset
	for i := 0; i < q.N(); i++ {
		w := q.Linear(i)
		p.h[i] += w / 2
		p.Offset += w / 2
	}
	for _, c := range q.Couplings() {
		// w·x_i·x_j = w/4·(1 + s_i + s_j + s_i·s_j)
		p.AddCoupling(c.I, c.J, c.W/4)
		p.h[c.I] += c.W / 4
		p.h[c.J] += c.W / 4
		p.Offset += c.W / 4
	}
	return p
}

// ToQUBO converts back to QUBO form via s = 2x − 1, preserving energies.
func (p *Problem) ToQUBO() *qubo.Problem {
	q := qubo.New(p.n)
	q.Offset = p.Offset
	for i, h := range p.h {
		// h·s = h·(2x − 1)
		q.AddLinear(i, 2*h)
		q.Offset -= h
	}
	for _, c := range p.Couplings() {
		// J·s_i·s_j = J·(4·x_i·x_j − 2·x_i − 2·x_j + 1)
		q.AddQuadratic(c.I, c.J, 4*c.W)
		q.AddLinear(c.I, -2*c.W)
		q.AddLinear(c.J, -2*c.W)
		q.Offset += c.W
	}
	return q
}

// SpinsToBits maps ±1 spins to binary values via x = (1+s)/2.
func SpinsToBits(s []int8) []bool {
	x := make([]bool, len(s))
	for i, si := range s {
		x[i] = si == 1
	}
	return x
}

// BitsToSpins maps binary values to ±1 spins via s = 2x − 1.
func BitsToSpins(x []bool) []int8 {
	s := make([]int8, len(x))
	for i, on := range x {
		if on {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// Gauge is a random spin-reversal transformation (Boixo et al., cited in
// Section 7.1): for each qubit it picks which physical state represents a
// logical one. Applying a gauge flips the signs of h_i for flipped spins
// and of J_ij for couplings with exactly one flipped endpoint; the problem
// spectrum is unchanged up to the spin relabeling.
type Gauge struct {
	Flip []bool
}

// RandomGauge draws a uniform gauge over n spins.
func RandomGauge(rng *rand.Rand, n int) Gauge {
	g := Gauge{Flip: make([]bool, n)}
	for i := range g.Flip {
		g.Flip[i] = rng.Intn(2) == 1
	}
	return g
}

// IdentityGauge flips nothing.
func IdentityGauge(n int) Gauge { return Gauge{Flip: make([]bool, n)} }

// Apply returns the gauge-transformed problem. Energies of corresponding
// states (spins flipped where g.Flip is set) are identical.
func (p *Problem) ApplyGauge(g Gauge) *Problem {
	if len(g.Flip) != p.n {
		panic("ising: gauge size mismatch")
	}
	out := New(p.n)
	out.Offset = p.Offset
	for i, h := range p.h {
		if g.Flip[i] {
			h = -h
		}
		out.h[i] = h
	}
	for k, w := range p.j {
		if g.Flip[k[0]] != g.Flip[k[1]] {
			w = -w
		}
		out.AddCoupling(k[0], k[1], w)
	}
	return out
}

// UndoSpins maps a solution of the gauge-transformed problem back to the
// original spin frame.
func (g Gauge) UndoSpins(s []int8) []int8 {
	out := make([]int8, len(s))
	for i, si := range s {
		if g.Flip[i] {
			out[i] = -si
		} else {
			out[i] = si
		}
	}
	return out
}

// Range describes hardware weight limits, e.g. h ∈ [−2, 2], J ∈ [−1, 1] on
// the D-Wave 2X.
type Range struct {
	HMin, HMax float64
	JMin, JMax float64
}

// DWave2XRange is the advertised control range of the D-Wave 2X.
var DWave2XRange = Range{HMin: -2, HMax: 2, JMin: -1, JMax: 1}

// ScaleToRange uniformly rescales h and J by the smallest factor that fits
// all weights inside r, returning the scaled problem and the factor. The
// ground state is unchanged (energies scale by the factor; the offset is
// scaled too so relative comparisons remain meaningful).
func (p *Problem) ScaleToRange(r Range) (*Problem, float64) {
	factor := 1.0
	for _, h := range p.h {
		if h > 0 && r.HMax > 0 {
			factor = math.Min(factor, r.HMax/h)
		}
		if h < 0 && r.HMin < 0 {
			factor = math.Min(factor, r.HMin/h)
		}
	}
	for _, w := range p.j {
		if w > 0 && r.JMax > 0 {
			factor = math.Min(factor, r.JMax/w)
		}
		if w < 0 && r.JMin < 0 {
			factor = math.Min(factor, r.JMin/w)
		}
	}
	out := New(p.n)
	out.Offset = p.Offset * factor
	for i, h := range p.h {
		out.h[i] = h * factor
	}
	for k, w := range p.j {
		out.AddCoupling(k[0], k[1], w*factor)
	}
	return out, factor
}

// MaxAbsWeight returns the largest |h| or |J|.
func (p *Problem) MaxAbsWeight() float64 {
	m := 0.0
	for _, h := range p.h {
		if a := math.Abs(h); a > m {
			m = a
		}
	}
	for _, w := range p.j {
		if a := math.Abs(w); a > m {
			m = a
		}
	}
	return m
}
