package ising

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/qubo"
)

func randomQUBO(rng *rand.Rand, n int) *qubo.Problem {
	q := qubo.New(n)
	q.Offset = rng.NormFloat64()
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64()*3)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				q.AddQuadratic(i, j, rng.NormFloat64()*3)
			}
		}
	}
	return q
}

func randomSpins(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		if rng.Intn(2) == 1 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

func TestFromQUBOPreservesEnergy(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		q := randomQUBO(rng, n)
		p := FromQUBO(q)
		s := randomSpins(rng, n)
		x := SpinsToBits(s)
		return math.Abs(q.Energy(x)-p.Energy(s)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestToQUBORoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		q := randomQUBO(rng, n)
		back := FromQUBO(q).ToQUBO()
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		return math.Abs(q.Energy(x)-back.Energy(x)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlipDeltaMatchesEnergyDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		p := FromQUBO(randomQUBO(rng, n))
		s := randomSpins(rng, n)
		i := rng.Intn(n)
		before := p.Energy(s)
		d := p.FlipDelta(s, i)
		s[i] = -s[i]
		after := p.Energy(s)
		if math.Abs((after-before)-d) > 1e-9 {
			t.Fatalf("trial %d: FlipDelta %v != energy difference %v", trial, d, after-before)
		}
	}
}

func TestGaugePreservesSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		p := FromQUBO(randomQUBO(rng, n))
		g := RandomGauge(rng, n)
		gp := p.ApplyGauge(g)
		s := randomSpins(rng, n)
		// State s in the gauge frame corresponds to UndoSpins(s) originally.
		if got, want := gp.Energy(s), p.Energy(g.UndoSpins(s)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: gauge energy %v != original %v", trial, got, want)
		}
	}
}

func TestIdentityGauge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := FromQUBO(randomQUBO(rng, 6))
	g := IdentityGauge(6)
	gp := p.ApplyGauge(g)
	s := randomSpins(rng, 6)
	if math.Abs(gp.Energy(s)-p.Energy(s)) > 1e-9 {
		t.Error("identity gauge changed energies")
	}
	if got := g.UndoSpins(s); got[0] != s[0] {
		t.Error("identity gauge changed spins")
	}
}

func TestGaugeUndoInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomGauge(rng, 8)
	s := randomSpins(rng, 8)
	twice := g.UndoSpins(g.UndoSpins(s))
	for i := range s {
		if twice[i] != s[i] {
			t.Fatal("applying UndoSpins twice is not the identity")
		}
	}
}

func TestScaleToRange(t *testing.T) {
	p := New(2)
	p.AddField(0, 8)
	p.AddField(1, -4)
	p.AddCoupling(0, 1, -3)
	scaled, factor := p.ScaleToRange(DWave2XRange)
	if factor <= 0 || factor > 1 {
		t.Fatalf("factor = %v, want in (0, 1]", factor)
	}
	if h := scaled.Field(0); h > DWave2XRange.HMax+1e-12 {
		t.Errorf("scaled h0 = %v exceeds range", h)
	}
	if j := scaled.Coupling(0, 1); j < DWave2XRange.JMin-1e-12 {
		t.Errorf("scaled J = %v below range", j)
	}
	// Ground state must be preserved: compare argmin over all 4 states.
	best := func(pr *Problem) [2]int8 {
		bestE := math.Inf(1)
		var bestS [2]int8
		for _, s0 := range []int8{-1, 1} {
			for _, s1 := range []int8{-1, 1} {
				if e := pr.Energy([]int8{s0, s1}); e < bestE {
					bestE = e
					bestS = [2]int8{s0, s1}
				}
			}
		}
		return bestS
	}
	if best(p) != best(scaled) {
		t.Error("scaling changed the ground state")
	}
}

func TestScaleToRangeNoOpWhenInside(t *testing.T) {
	p := New(2)
	p.AddField(0, 0.5)
	p.AddCoupling(0, 1, -0.25)
	_, factor := p.ScaleToRange(DWave2XRange)
	if factor != 1 {
		t.Errorf("factor = %v, want 1 for in-range weights", factor)
	}
}

func TestSpinBitConversions(t *testing.T) {
	s := []int8{1, -1, 1}
	x := SpinsToBits(s)
	if !x[0] || x[1] || !x[2] {
		t.Errorf("SpinsToBits(%v) = %v", s, x)
	}
	back := BitsToSpins(x)
	for i := range s {
		if back[i] != s[i] {
			t.Fatalf("BitsToSpins round trip failed at %d", i)
		}
	}
}

func TestSelfCouplingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self-coupling")
		}
	}()
	New(2).AddCoupling(1, 1, 1)
}
