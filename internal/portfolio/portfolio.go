// Package portfolio implements anytime portfolio racing: running several
// heterogeneous solvers concurrently on one problem, exchanging
// improvements through a shared incumbent board, and reporting the best
// anytime incumbent across all members. The paper compares QA against
// ILP, hill climbing, and genetic baselines one solver at a time; a
// portfolio races them on the execution engine (internal/exec) so the
// comparison becomes "whichever gets there first", with per-member
// attribution preserved.
//
// Three pieces:
//
//   - Board: a lock-free best-cost gate. A member's improvement publishes
//     only if it beats the global best, so the live stream observed by a
//     caller is strictly decreasing no matter how members interleave.
//   - Race: bounded deterministic fan-out. Member i always runs with the
//     SplitMix sub-seed Split(seed, i), outcomes return in member order,
//     and a member panic is captured into its outcome instead of killing
//     the race.
//   - Merge: the determinism contract's half for traces. Live publishes
//     depend on scheduling, so the final merged trace is reconstructed
//     from the members' private traces — ordered by time, ties broken by
//     member order, filtered to strictly improving costs. Fixed seed and
//     fixed member list therefore yield a bit-identical merged stream at
//     any parallelism, provided the members themselves are deterministic
//     (modeled-clock solvers are; wall-clock baselines are only as
//     deterministic as their clock).
package portfolio

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/splitmix"
)

// Board is the shared incumbent board: a lock-free gate over the best
// cost any member has published so far. The zero value is unusable;
// construct with NewBoard.
type Board struct {
	bits atomic.Uint64 // math.Float64bits of the best published cost
}

// NewBoard returns a board with no incumbent (best = +Inf).
func NewBoard() *Board {
	b := &Board{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Best returns the best cost published so far (+Inf when none).
func (b *Board) Best() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Offer publishes cost if it strictly beats the global best and reports
// whether it did. It is lock-free: a compare-and-swap loop on the float
// bits, safe to call from every member goroutine on every improvement.
// Non-improving offers return false without writing.
func (b *Board) Offer(cost float64) bool {
	for {
		cur := b.bits.Load()
		if !(cost < math.Float64frombits(cur)) {
			return false
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(cost)) {
			return true
		}
	}
}

// Entry is one attributed incumbent improvement: at time T the member
// named Source reached Cost. Times are each member's own elapsed
// (modeled device time for annealer members, wall-clock for classical
// ones) — the racing model charges every member its private clock, as if
// all ran on dedicated hardware.
type Entry struct {
	T      time.Duration
	Cost   float64
	Source string
}

// Merge flattens per-member incumbent traces into the single
// strictly-improving portfolio stream: entries are ordered by time with
// ties broken by member position (earlier members win), then filtered so
// costs strictly decrease. The result is deterministic in the member
// traces alone — scheduling, worker counts, and publish interleavings
// never enter — which is what makes the portfolio determinism contract
// checkable at any parallelism. Each input trace must be nondecreasing
// in time (the trace package's Record guarantees this).
func Merge(traces [][]Entry) []Entry {
	type keyed struct {
		e      Entry
		member int
	}
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	all := make([]keyed, 0, total)
	for m, tr := range traces {
		for _, e := range tr {
			all = append(all, keyed{e: e, member: m})
		}
	}
	// Stable sort keeps each member's internal order for equal (T, member).
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].e.T != all[j].e.T {
			return all[i].e.T < all[j].e.T
		}
		return all[i].member < all[j].member
	})
	out := make([]Entry, 0, len(all))
	best := math.Inf(1)
	for _, k := range all {
		if k.e.Cost < best {
			best = k.e.Cost
			out = append(out, k.e)
		}
	}
	return out
}

// Member is one racing entrant: a named closure that runs the member to
// completion under its private sub-seed and returns its result. The
// closure is expected to capture the problem, its options, and the race
// context; Race only supplies the seed.
type Member[R any] struct {
	Name string
	Run  func(seed int64) (R, error)
}

// Outcome is what one member contributed to the race. Err carries the
// member's own failure (including a captured panic); a failed member
// never aborts the race — the portfolio's value is exactly that slow or
// broken members lose instead of vetoing.
type Outcome[R any] struct {
	Name   string
	Result R
	Err    error
}

// Race runs every member with at most parallelism concurrent entrants
// (non-positive races all members at once) and returns their outcomes in
// member order. Member i runs with seed splitmix.Split(seed, i), so a
// fixed (seed, member list) pair reproduces every member's private
// stream at any parallelism. Cancellation is the members' job: Race
// itself always waits for every started member to return, which is what
// lets a cancelled race still collect the winner's result — members must
// honor their captured context promptly.
func Race[R any](parallelism int, seed int64, members []Member[R]) []Outcome[R] {
	if parallelism <= 0 {
		parallelism = len(members)
	}
	out, _ := exec.Map(context.Background(), parallelism, len(members),
		func(_ context.Context, i int) (Outcome[R], error) {
			o := Outcome[R]{Name: members[i].Name}
			func() {
				defer func() {
					if r := recover(); r != nil {
						o.Err = fmt.Errorf("portfolio: member %s panicked: %v\n%s",
							members[i].Name, r, debug.Stack())
					}
				}()
				o.Result, o.Err = members[i].Run(splitmix.Split(seed, int64(i)))
			}()
			return o, nil
		})
	return out
}
