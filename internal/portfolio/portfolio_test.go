package portfolio

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/mqo"
	"repro/internal/solvers"
	"repro/internal/splitmix"
	"repro/internal/trace"
)

func TestBoardOfferGatesOnStrictImprovement(t *testing.T) {
	b := NewBoard()
	if !math.IsInf(b.Best(), 1) {
		t.Fatalf("fresh board best = %v, want +Inf", b.Best())
	}
	if !b.Offer(10) {
		t.Fatal("first offer rejected")
	}
	if b.Offer(10) {
		t.Error("equal cost published; the gate must be strict")
	}
	if b.Offer(11) {
		t.Error("worse cost published")
	}
	if !b.Offer(9.5) || b.Best() != 9.5 {
		t.Errorf("improvement rejected; best = %v", b.Best())
	}
}

// TestBoardConcurrentOffers hammers the CAS gate from many goroutines:
// the final best must be the global minimum and every published cost must
// have been an improvement at publish time (counted: at most one success
// per distinct descending cost).
func TestBoardConcurrentOffers(t *testing.T) {
	b := NewBoard()
	const workers = 8
	var wg sync.WaitGroup
	published := make([]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				if b.Offer(float64(rng.Intn(1000))) {
					published[w]++
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, n := range published {
		total += n
	}
	// Costs are integers in [0, 1000): a strictly decreasing publish
	// sequence has at most 1000 elements.
	if total == 0 || total > 1000 {
		t.Errorf("published %d improvements, want 1..1000 strictly decreasing", total)
	}
	if best := b.Best(); best < 0 || best >= 1000 {
		t.Errorf("final best %v out of range", best)
	}
}

func TestMergeOrdersByTimeThenMember(t *testing.T) {
	a := []Entry{{T: 1 * time.Millisecond, Cost: 50, Source: "A"}, {T: 5 * time.Millisecond, Cost: 20, Source: "A"}}
	b := []Entry{{T: 1 * time.Millisecond, Cost: 40, Source: "B"}, {T: 3 * time.Millisecond, Cost: 30, Source: "B"}, {T: 9 * time.Millisecond, Cost: 25, Source: "B"}}
	got := Merge([][]Entry{a, b})
	want := []Entry{
		{T: 1 * time.Millisecond, Cost: 50, Source: "A"}, // tie at t=1: member 0 first
		{T: 1 * time.Millisecond, Cost: 40, Source: "B"},
		{T: 3 * time.Millisecond, Cost: 30, Source: "B"},
		{T: 5 * time.Millisecond, Cost: 20, Source: "A"},
		// B's t=9 cost 25 is dominated by A's 20 and must be filtered.
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %v, want %v", got, want)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if got := Merge(nil); len(got) != 0 {
		t.Errorf("Merge(nil) = %v", got)
	}
	one := []Entry{{T: 1, Cost: 3, Source: "X"}, {T: 2, Cost: 1, Source: "X"}}
	if got := Merge([][]Entry{one}); !reflect.DeepEqual(got, one) {
		t.Errorf("Merge single = %v, want %v", got, one)
	}
}

// TestRaceSeedsAndOrderDeterministic pins the fan-out contract: member i
// always receives Split(seed, i), and outcomes return in member order at
// every parallelism.
func TestRaceSeedsAndOrderDeterministic(t *testing.T) {
	const seed = 42
	members := make([]Member[int64], 5)
	for i := range members {
		members[i] = Member[int64]{
			Name: string(rune('a' + i)),
			Run:  func(s int64) (int64, error) { return s, nil },
		}
	}
	for _, par := range []int{1, 3, 0} {
		out := Race(par, seed, members)
		if len(out) != len(members) {
			t.Fatalf("par=%d: %d outcomes", par, len(out))
		}
		for i, o := range out {
			if o.Name != members[i].Name {
				t.Errorf("par=%d: outcome %d is %q, want %q", par, i, o.Name, members[i].Name)
			}
			if o.Result != splitmix.Split(seed, int64(i)) {
				t.Errorf("par=%d: member %d got seed %d, want Split(%d,%d)", par, i, o.Result, seed, i)
			}
		}
	}
}

// TestRaceMemberPanicIsIsolated: a panicking member loses; it must not
// abort the race or poison the other outcomes.
func TestRaceMemberPanicIsIsolated(t *testing.T) {
	members := []Member[string]{
		{Name: "ok", Run: func(int64) (string, error) { return "fine", nil }},
		{Name: "boom", Run: func(int64) (string, error) { panic("kaput") }},
		{Name: "also-ok", Run: func(int64) (string, error) { return "fine too", nil }},
	}
	out := Race(0, 1, members)
	if out[0].Err != nil || out[0].Result != "fine" {
		t.Errorf("member 0: %+v", out[0])
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "kaput") {
		t.Errorf("member 1 panic not captured: %+v", out[1].Err)
	}
	if out[2].Err != nil || out[2].Result != "fine too" {
		t.Errorf("member 2: %+v", out[2])
	}
}

// portfolioInstance builds a small annealer-embeddable instance with its
// exact optimum.
func portfolioInstance(t *testing.T) (*mqo.Problem, float64) {
	t.Helper()
	g := chimera.DWave2X(0, 0)
	p, err := core.GenerateEmbeddable(rand.New(rand.NewSource(5)), g,
		mqo.Class{Queries: 14, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := p.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	return p, opt
}

// TestSolverDeterministicAcrossParallelism is the internal half of the
// portfolio determinism contract: two modeled-clock members, fixed seed —
// the merged trace and final solution are identical whether the members
// race one at a time or all at once.
func TestSolverDeterministicAcrossParallelism(t *testing.T) {
	p, _ := portfolioInstance(t)
	run := func(par int) ([]trace.Point, mqo.Solution) {
		s := New(
			&core.QASolver{Opt: core.Options{Runs: 150, Parallelism: 1}},
			&core.QASolver{Opt: core.Options{Runs: 60, Pattern: core.PatternTriad, Parallelism: 1}},
		)
		s.Parallelism = par
		tr := &trace.Trace{}
		sol := s.Solve(context.Background(), p, time.Second, rand.New(rand.NewSource(9)), tr)
		return tr.Points(), sol
	}
	wantPts, wantSol := run(1)
	if len(wantPts) == 0 || wantSol == nil {
		t.Fatal("sequential portfolio produced no trace or solution")
	}
	for _, par := range []int{2, 0} {
		gotPts, gotSol := run(par)
		if !reflect.DeepEqual(gotPts, wantPts) {
			t.Errorf("parallelism %d: merged trace diverges:\n  got  %v\n  want %v", par, gotPts, wantPts)
		}
		if !reflect.DeepEqual(gotSol, wantSol) {
			t.Errorf("parallelism %d: solution %v != %v", par, gotSol, wantSol)
		}
	}
	// The merged stream must be strictly decreasing in cost and
	// nondecreasing in time.
	for i := 1; i < len(wantPts); i++ {
		if wantPts[i].Cost >= wantPts[i-1].Cost {
			t.Errorf("merged trace not strictly decreasing at %d: %v", i, wantPts)
		}
		if wantPts[i].T < wantPts[i-1].T {
			t.Errorf("merged trace goes back in time at %d: %v", i, wantPts)
		}
	}
}

// blockingSolver waits for cancellation and records that it saw it — the
// straggler in the cancellation-ladder tests.
type blockingSolver struct {
	mu        sync.Mutex
	sawCancel bool
}

func (b *blockingSolver) Name() string { return "BLOCKER" }

func (b *blockingSolver) Solve(ctx context.Context, p *mqo.Problem, _ time.Duration, _ *rand.Rand, _ *trace.Trace) mqo.Solution {
	<-ctx.Done()
	b.mu.Lock()
	b.sawCancel = true
	b.mu.Unlock()
	return nil
}

func (b *blockingSolver) cancelled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sawCancel
}

// TestTargetCostCancelsStragglers: once a member publishes an incumbent
// at or below the target, every other member's context must be cancelled
// (the straggler would otherwise block forever here).
func TestTargetCostCancelsStragglers(t *testing.T) {
	p, _ := portfolioInstance(t)
	greedyCost, err := p.Cost(solvers.GreedySolution(p))
	if err != nil {
		t.Fatal(err)
	}
	blocker := &blockingSolver{}
	s := New(solvers.Greedy{}, blocker)
	s.Target = greedyCost
	s.UseTarget = true
	tr := &trace.Trace{}
	done := make(chan mqo.Solution, 1)
	go func() {
		done <- s.Solve(context.Background(), p, time.Second, rand.New(rand.NewSource(1)), tr)
	}()
	select {
	case sol := <-done:
		if !blocker.cancelled() {
			t.Error("straggler never observed ctx.Err() after the target was reached")
		}
		cost, err := p.Cost(sol)
		if err != nil || cost != greedyCost {
			t.Errorf("portfolio solution cost %v (err %v), want greedy cost %v", cost, err, greedyCost)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("portfolio never cancelled the straggler on target cost")
	}
}

// TestSolverNameAndEmpty covers the trivial contract edges.
func TestSolverNameAndEmpty(t *testing.T) {
	s := New(solvers.Greedy{}, solvers.HillClimb{})
	if got := s.Name(); got != "PORTFOLIO(GREEDY+CLIMB)" {
		t.Errorf("Name = %q", got)
	}
	p, _ := portfolioInstance(t)
	if sol := New().Solve(context.Background(), p, time.Second, rand.New(rand.NewSource(1)), nil); sol != nil {
		t.Errorf("empty portfolio returned %v", sol)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if sol := s.Solve(ctx, p, time.Second, rand.New(rand.NewSource(1)), nil); sol != nil {
		t.Errorf("pre-cancelled portfolio returned %v", sol)
	}
}
