package portfolio

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/mqo"
	"repro/internal/solvers"
	"repro/internal/trace"
)

// Solver races a set of internal anytime solvers as one solvers.Solver,
// so a portfolio can sit in the harness's panel next to the solvers it is
// made of (a "PORTFOLIO(...)" column in Table-1-style experiments and the
// anytime figures). Construct with New; the zero value has no members.
type Solver struct {
	// Members are the racing entrants. Each runs with the full budget and
	// a private SplitMix sub-seed of the session seed.
	Members []solvers.Solver
	// Parallelism bounds how many members race concurrently;
	// non-positive races all of them at once. The harness pins it to 1 so
	// its (instance, solver) worker bound stays exact — the merged trace
	// is identical either way for deterministic members, because merging
	// uses each member's private clock, not the scheduler's.
	Parallelism int
	// Target, when UseTarget is set, is the cancellation ladder's third
	// rung: as soon as any member publishes an incumbent with cost ≤
	// Target, every other member's context is cancelled.
	Target    float64
	UseTarget bool
}

// New assembles a portfolio over the given members.
func New(members ...solvers.Solver) *Solver {
	return &Solver{Members: members}
}

// Name implements solvers.Solver, e.g. "PORTFOLIO(QA+CLIMB)".
func (s *Solver) Name() string {
	names := make([]string, len(s.Members))
	for i, m := range s.Members {
		names[i] = m.Name()
	}
	return "PORTFOLIO(" + strings.Join(names, "+") + ")"
}

// memberRun is what one member contributes: its final solution and its
// private incumbent trace, already attributed.
type memberRun struct {
	sol     mqo.Solution
	entries []Entry
}

// Solve implements solvers.Solver. Every member runs under the full
// budget with the sub-seed Split(rng.Int63(), memberIndex); improvements
// flow through the shared Board, and the first member to reach Target
// (when set) cancels the rest — stragglers observe ctx.Err() at the next
// iteration of their budget loop and hand back their partial incumbents,
// which still join the merge. The recorded trace is the deterministic
// Merge of the members' private traces, and the returned solution is the
// best final member solution (ties break toward the earlier member).
func (s *Solver) Solve(ctx context.Context, p *mqo.Problem, budget time.Duration, rng *rand.Rand, tr *trace.Trace) mqo.Solution {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(s.Members) == 0 || ctx.Err() != nil {
		return nil
	}
	seed := rng.Int63()
	board := NewBoard()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	members := make([]Member[*memberRun], len(s.Members))
	for i, m := range s.Members {
		m := m
		members[i] = Member[*memberRun]{
			Name: m.Name(),
			Run: func(memberSeed int64) (*memberRun, error) {
				run := &memberRun{}
				mtr := &trace.Trace{}
				mtr.Observe(func(pt trace.Point) {
					run.entries = append(run.entries, Entry{T: pt.T, Cost: pt.Cost, Source: m.Name()})
					if board.Offer(pt.Cost) && s.UseTarget && pt.Cost <= s.Target+trace.CostEpsilon {
						cancel()
					}
				})
				run.sol = m.Solve(raceCtx, p, budget, rand.New(rand.NewSource(memberSeed)), mtr)
				return run, nil
			},
		}
	}
	outcomes := Race(s.Parallelism, seed, members)

	traces := make([][]Entry, 0, len(outcomes))
	best := mqo.Solution(nil)
	bestCost := math.Inf(1)
	for _, o := range outcomes {
		if o.Err != nil || o.Result == nil {
			continue
		}
		traces = append(traces, o.Result.entries)
		if sol := o.Result.sol; sol != nil && p.Valid(sol) {
			if cost, err := p.Cost(sol); err == nil && cost < bestCost {
				bestCost = cost
				best = sol
			}
		}
	}
	if tr != nil {
		for _, e := range Merge(traces) {
			tr.Record(e.T, e.Cost)
		}
	}
	return best
}
