package proptest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/ising"
	"repro/internal/topology"
)

// The packed anneal kernel (internal/anneal/kernel.go) claims BIT-exact
// equivalence with the straightforward ±1-slice implementation it
// replaced: same rng stream, same acceptance decisions, same read-out.
// These properties pin that claim against naive references retained
// here verbatim from the pre-kernel samplers, across hardware-shaped
// programs on all three topology kinds and random gauge transforms.

// naiveSA is the pre-kernel SimulatedAnnealer.Sample: dense ±1 slice
// state, naive FlipDelta recomputation, math.Exp Metropolis test.
func naiveSA(sa *anneal.SimulatedAnnealer, c *anneal.Compiled, rng *rand.Rand) []int8 {
	s := anneal.RandomSpins(rng, c.N)
	if sa.Sweeps <= 0 || c.N == 0 {
		return s
	}
	ratio := 1.0
	if sa.Sweeps > 1 {
		ratio = math.Pow(sa.BetaEnd/sa.BetaStart, 1/float64(sa.Sweeps-1))
	}
	beta := sa.BetaStart
	for sweep := 0; sweep < sa.Sweeps; sweep++ {
		for i := 0; i < c.N; i++ {
			d := c.FlipDelta(s, i)
			if d <= 0 || rng.Float64() < math.Exp(-beta*d) {
				s[i] = -s[i]
			}
		}
		beta *= ratio
	}
	return s
}

// naiveSQA is the pre-kernel SQA.Sample: one dense replica slice per
// Trotter layer, per-site transverse-field coupling recomputed naively.
func naiveSQA(q *anneal.SQA, c *anneal.Compiled, rng *rand.Rand) []int8 {
	if c.N == 0 {
		return nil
	}
	p := q.Slices
	if p < 2 {
		p = 2
	}
	betaP := q.Beta / float64(p)
	replicas := make([][]int8, p)
	for k := range replicas {
		replicas[k] = anneal.RandomSpins(rng, c.N)
	}
	for sweep := 0; sweep < q.Sweeps; sweep++ {
		frac := 0.0
		if q.Sweeps > 1 {
			frac = float64(sweep) / float64(q.Sweeps-1)
		}
		gamma := q.GammaStart + (q.GammaEnd-q.GammaStart)*frac
		jPerp := -0.5 / betaP * math.Log(math.Tanh(betaP*gamma))
		for k := 0; k < p; k++ {
			up := replicas[(k+1)%p]
			down := replicas[(k-1+p)%p]
			cur := replicas[k]
			for i := 0; i < c.N; i++ {
				d := c.FlipDelta(cur, i) / float64(p)
				d += 2 * jPerp * float64(cur[i]) * float64(up[i]+down[i])
				if d <= 0 || rng.Float64() < math.Exp(-q.Beta*d) {
					cur[i] = -cur[i]
				}
			}
		}
	}
	best := replicas[0]
	bestE := c.Energy(best)
	for _, r := range replicas[1:] {
		if e := c.Energy(r); e < bestE {
			bestE = e
			best = r
		}
	}
	return best
}

// randomTopoProgram compiles a random Ising program over the hardware
// graph of the given kind: the sparse degree-bounded shape the solver
// pipeline feeds the kernel.
func randomTopoProgram(t *testing.T, rng *rand.Rand, kind string) *anneal.Compiled {
	t.Helper()
	g, err := topology.New(kind, 2, 3)
	if err != nil {
		t.Fatalf("topology.New(%s): %v", kind, err)
	}
	n := g.NumQubits()
	p := ising.New(n)
	for q := 0; q < n; q++ {
		p.AddField(q, rng.NormFloat64())
		for _, nb := range g.Neighbors(q) {
			if nb > q && rng.Float64() < 0.9 {
				p.AddCoupling(q, nb, rng.NormFloat64())
			}
		}
	}
	return anneal.Compile(p)
}

// TestKernelEnergyAndDeltaBitExact: on every topology kind and random
// gauge, the packed energy and flip-delta evaluations equal the naive
// slice forms bit-for-bit (== on float64, not a tolerance).
func TestKernelEnergyAndDeltaBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, kind := range []string{topology.ChimeraKind, topology.PegasusKind, topology.ZephyrKind} {
		c := randomTopoProgram(t, rng, kind)
		for trial := 0; trial < 6; trial++ {
			prog := c
			if trial > 0 { // trial 0 is the identity gauge
				flip := make([]bool, c.N)
				for i := range flip {
					flip[i] = rng.Intn(2) == 0
				}
				prog = c.ApplyGauge(flip)
			}
			s := anneal.RandomSpins(rng, prog.N)
			words := make([]uint64, anneal.WordsFor(prog.N))
			anneal.PackSpins(s, words)
			if got, want := prog.PackedEnergy(words), prog.Energy(s); got != want {
				t.Fatalf("%s trial %d: PackedEnergy %v != Energy %v", kind, trial, got, want)
			}
			for i := 0; i < prog.N; i++ {
				if got, want := prog.PackedFlipDelta(words, i), prog.FlipDelta(s, i); got != want {
					t.Fatalf("%s trial %d spin %d: PackedFlipDelta %v != FlipDelta %v", kind, trial, i, got, want)
				}
			}
		}
	}
}

// TestKernelSweepsMatchNaive: a full SA and SQA run from the same seed
// produces the identical read-out through the packed kernel and the
// naive reference — the rng-draw sequence, every Metropolis decision,
// and the final state all preserved. The scratch is deliberately shared
// across kinds, gauges, and samplers so any state leaking between runs
// would break the comparison.
func TestKernelSweepsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	sa := anneal.DefaultSA()
	sqa := anneal.DefaultSQA()
	sc := anneal.NewScratch()
	for _, kind := range []string{topology.ChimeraKind, topology.PegasusKind, topology.ZephyrKind} {
		c := randomTopoProgram(t, rng, kind)
		for trial := 0; trial < 3; trial++ {
			prog := c
			if trial > 0 {
				flip := make([]bool, c.N)
				for i := range flip {
					flip[i] = rng.Intn(2) == 0
				}
				prog = c.ApplyGauge(flip)
			}
			seed := rng.Int63()

			want := naiveSA(sa, prog, rand.New(rand.NewSource(seed)))
			sa.SampleInto(prog, rand.New(rand.NewSource(seed)), sc)
			got := sc.Spins()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: SA spin %d kernel %d != naive %d", kind, trial, i, got[i], want[i])
				}
			}

			want = naiveSQA(sqa, prog, rand.New(rand.NewSource(seed)))
			sqa.SampleInto(prog, rand.New(rand.NewSource(seed)), sc)
			got = sc.Spins()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: SQA spin %d kernel %d != naive %d", kind, trial, i, got[i], want[i])
				}
			}
		}
	}
}
