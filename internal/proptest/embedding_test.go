package proptest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/logical"
	"repro/internal/mqo"
)

// embeddingIterations is smaller than the energy properties' budget:
// each iteration embeds a full instance on the Chimera graph.
const embeddingIterations = 60

// randomEmbeddableCase draws an instance guaranteed to fit the annealer
// and maps it physically with a randomly chosen pattern.
func randomEmbeddableCase(t *testing.T, rng *rand.Rand, g *chimera.Graph) (*logical.Mapping, *embedding.Physical) {
	t.Helper()
	pattern := core.PatternAuto
	if rng.Intn(2) == 1 {
		pattern = core.PatternTriad
	}
	plans := 2 + rng.Intn(2)
	// TRIAD embeds n variables in chains of length ⌈n/4⌉+1, which caps a
	// 12×12-cell graph at 48 variables; stay below it when forcing TRIAD.
	maxQueries := 16
	if pattern == core.PatternTriad {
		maxQueries = 44 / plans
	}
	class := mqo.Class{Queries: 4 + rng.Intn(maxQueries-3), PlansPerQuery: plans}
	p, err := core.GenerateEmbeddable(rng, g, class, mqo.DefaultGeneratorConfig())
	if err != nil {
		t.Fatalf("generating embeddable %v: %v", class, err)
	}
	mapping := logical.Map(p)
	emb, _, err := core.EmbedProblem(g, p, mapping, pattern)
	if err != nil {
		t.Fatalf("embedding: %v", err)
	}
	phys, err := embedding.PhysicalMap(emb, mapping.QUBO, embedding.DefaultEpsilon)
	if err != nil {
		t.Fatalf("physical map: %v", err)
	}
	return mapping, phys
}

// TestPropChainsConnectedWithUniformCouplings is the embedding
// invariant: every logical variable's chain is a connected path of
// working, exclusively-owned qubits, and the ferromagnetic terms along
// it are uniform — each consecutive pair carries exactly −2·wB for the
// chain's single strength wB > 0, while non-consecutive pairs within a
// chain carry nothing.
func TestPropChainsConnectedWithUniformCouplings(t *testing.T) {
	g := chimera.DWave2X(0, 0)
	for iter := 0; iter < embeddingIterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		_, phys := randomEmbeddableCase(t, rng, g)
		emb := phys.Emb
		owner := map[int]int{} // hardware qubit -> variable
		for v, chain := range emb.Chains {
			if len(chain) == 0 {
				t.Fatalf("iter %d: variable %d has an empty chain", iter, v)
			}
			for _, q := range chain {
				if !g.Working(q) {
					t.Fatalf("iter %d: chain of %d uses broken qubit %d", iter, v, q)
				}
				if prev, dup := owner[q]; dup {
					t.Fatalf("iter %d: qubit %d owned by variables %d and %d", iter, q, prev, v)
				}
				owner[q] = v
				if emb.VariableOf(q) != v {
					t.Fatalf("iter %d: reverse index disagrees for qubit %d", iter, q)
				}
			}
			// Connectivity: consecutive chain qubits joined by a coupler.
			for i := 0; i+1 < len(chain); i++ {
				if !g.HasCoupler(chain[i], chain[i+1]) {
					t.Fatalf("iter %d: chain of %d breaks between qubits %d and %d",
						iter, v, chain[i], chain[i+1])
				}
			}
			// Uniform intra-chain couplings at −2·wB.
			wB := phys.ChainStrength[v]
			if !(wB > 0) || math.IsInf(wB, 0) || math.IsNaN(wB) {
				t.Fatalf("iter %d: chain strength of %d is %v", iter, v, wB)
			}
			idx := phys.ChainOf(v)
			for i := 0; i < len(idx); i++ {
				for j := i + 1; j < len(idx); j++ {
					got := phys.QUBO.Quadratic(idx[i], idx[j])
					if j == i+1 {
						if math.Abs(got-(-2*wB)) > tol {
							t.Fatalf("iter %d: intra-chain coupling (%d,%d) of variable %d = %v, want %v",
								iter, i, j, v, got, -2*wB)
						}
					} else if got != 0 {
						t.Fatalf("iter %d: non-consecutive chain pair (%d,%d) of variable %d carries %v",
							iter, i, j, v, got)
					}
				}
			}
		}
	}
}

// TestPropEmbedUnembedRoundTrip: expanding a logical assignment to a
// chain-consistent physical one and reading it back is the identity, the
// expansion breaks no chains, and the physical energy of the expansion
// equals the logical energy (the defining property of the physical
// mapping).
func TestPropEmbedUnembedRoundTrip(t *testing.T) {
	g := chimera.DWave2X(0, 0)
	for iter := 0; iter < embeddingIterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		mapping, phys := randomEmbeddableCase(t, rng, g)
		logicalBits := RandomAssignment(rng, mapping.QUBO.N())
		physBits := phys.Embed(logicalBits)
		if n := phys.BrokenChains(physBits); n != 0 {
			t.Fatalf("iter %d: Embed produced %d broken chains", iter, n)
		}
		if got := phys.Unembed(physBits); !reflect.DeepEqual(got, logicalBits) {
			t.Fatalf("iter %d: Unembed(Embed(x)) != x", iter)
		}
		eLogical := mapping.QUBO.Energy(logicalBits)
		ePhysical := phys.QUBO.Energy(physBits)
		if math.Abs(eLogical-ePhysical) > tol*math.Max(1, math.Abs(eLogical)) {
			t.Fatalf("iter %d: physical energy %v != logical energy %v on a chain-consistent state",
				iter, ePhysical, eLogical)
		}
	}
}
