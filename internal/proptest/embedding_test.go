package proptest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/logical"
	"repro/internal/mqo"
	"repro/internal/topology"
)

// embeddingIterations is smaller than the energy properties' budget:
// each iteration embeds a full instance on a hardware graph. The budget
// is split across the three topology kinds.
const embeddingIterations = 20

// topologiesUnderTest returns one paper-scale instance of every
// built-in topology kind. Fresh graphs per call: the properties must
// hold on each kind, not just the Chimera the paper targets.
func topologiesUnderTest(t *testing.T) []topology.Graph {
	t.Helper()
	out := []topology.Graph{topology.DWave2X(0, 0)}
	for _, kind := range []string{"pegasus", "zephyr"} {
		g, err := topology.New(kind, 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, g)
	}
	return out
}

// randomEmbeddableCase draws an instance guaranteed to fit the annealer
// and maps it physically with a randomly chosen pattern valid for the
// graph's kind.
func randomEmbeddableCase(t *testing.T, rng *rand.Rand, g topology.Graph) (*logical.Mapping, *embedding.Physical) {
	t.Helper()
	pattern := core.PatternAuto
	plans := 2 + rng.Intn(2)
	maxQueries := 16
	switch rng.Intn(3) {
	case 1:
		// TRIAD embeds n variables in chains of length ⌈n/4⌉+1, which
		// caps a 12×12-cell graph at 48 variables; stay below it when
		// forcing TRIAD, and further below on faulty graphs, where
		// broken chains force the pattern to grow. Valid on every
		// kind: Pegasus/Zephyr contain Chimera's couplers.
		pattern = core.PatternTriad
		maxQueries = 44 / plans
		if g.NumWorkingQubits() < g.NumQubits() {
			maxQueries = 28 / plans
		}
	case 2:
		// The greedy path embedder handles complete graphs up to
		// roughly the degree bound, and fault maps shrink the envelope
		// further; stay conservatively inside it per kind.
		pattern = core.PatternGreedy
		plans = 2
		switch g.Kind() {
		case "pegasus":
			maxQueries = 6
		case "zephyr":
			maxQueries = 8
		default:
			maxQueries = 4
		}
	}
	class := mqo.Class{Queries: 4 + rng.Intn(maxQueries-3), PlansPerQuery: plans}
	p, err := core.GenerateEmbeddable(rng, g, class, mqo.DefaultGeneratorConfig())
	if err != nil {
		t.Fatalf("%s: generating embeddable %v: %v", g.Kind(), class, err)
	}
	mapping := logical.Map(p)
	emb, _, err := core.EmbedProblem(g, p, mapping, pattern)
	if err != nil {
		t.Fatalf("%s: embedding (%q): %v", g.Kind(), pattern, err)
	}
	phys, err := embedding.PhysicalMap(emb, mapping.QUBO, embedding.DefaultEpsilon)
	if err != nil {
		t.Fatalf("%s: physical map: %v", g.Kind(), err)
	}
	return mapping, phys
}

// TestPropChainsConnectedWithUniformCouplings is the embedding
// invariant on EVERY topology kind: each logical variable's chain is a
// connected path of working, exclusively-owned qubits joined by working
// couplers, and the ferromagnetic terms along it are uniform — each
// consecutive pair carries exactly −2·wB for the chain's single
// strength wB > 0, while non-consecutive pairs within a chain carry
// nothing.
func TestPropChainsConnectedWithUniformCouplings(t *testing.T) {
	for _, g := range topologiesUnderTest(t) {
		for iter := 0; iter < embeddingIterations; iter++ {
			rng := rand.New(rand.NewSource(int64(iter)))
			_, phys := randomEmbeddableCase(t, rng, g)
			emb := phys.Emb
			owner := map[int]int{} // hardware qubit -> variable
			for v, chain := range emb.Chains {
				if len(chain) == 0 {
					t.Fatalf("%s iter %d: variable %d has an empty chain", g.Kind(), iter, v)
				}
				for _, q := range chain {
					if !g.Working(q) {
						t.Fatalf("%s iter %d: chain of %d uses broken qubit %d", g.Kind(), iter, v, q)
					}
					if prev, dup := owner[q]; dup {
						t.Fatalf("%s iter %d: qubit %d owned by variables %d and %d", g.Kind(), iter, q, prev, v)
					}
					owner[q] = v
					if emb.VariableOf(q) != v {
						t.Fatalf("%s iter %d: reverse index disagrees for qubit %d", g.Kind(), iter, q)
					}
				}
				// Connectivity: consecutive chain qubits joined by a
				// working coupler of THIS topology.
				for i := 0; i+1 < len(chain); i++ {
					if !g.HasCoupler(chain[i], chain[i+1]) {
						t.Fatalf("%s iter %d: chain of %d breaks between qubits %d and %d",
							g.Kind(), iter, v, chain[i], chain[i+1])
					}
				}
				// Uniform intra-chain couplings at −2·wB.
				wB := phys.ChainStrength[v]
				if !(wB > 0) || math.IsInf(wB, 0) || math.IsNaN(wB) {
					t.Fatalf("%s iter %d: chain strength of %d is %v", g.Kind(), iter, v, wB)
				}
				idx := phys.ChainOf(v)
				for i := 0; i < len(idx); i++ {
					for j := i + 1; j < len(idx); j++ {
						got := phys.QUBO.Quadratic(idx[i], idx[j])
						if j == i+1 {
							if math.Abs(got-(-2*wB)) > tol {
								t.Fatalf("%s iter %d: intra-chain coupling (%d,%d) of variable %d = %v, want %v",
									g.Kind(), iter, i, j, v, got, -2*wB)
							}
						} else if got != 0 {
							t.Fatalf("%s iter %d: non-consecutive chain pair (%d,%d) of variable %d carries %v",
								g.Kind(), iter, i, j, v, got)
						}
					}
				}
			}
		}
	}
}

// TestPropEmbedUnembedRoundTrip on every topology kind: expanding a
// logical assignment to a chain-consistent physical one and reading it
// back is the identity, the expansion breaks no chains, and the
// physical energy of the expansion equals the logical energy (the
// defining property of the physical mapping, independent of which graph
// hosts the chains).
func TestPropEmbedUnembedRoundTrip(t *testing.T) {
	for _, g := range topologiesUnderTest(t) {
		for iter := 0; iter < embeddingIterations; iter++ {
			rng := rand.New(rand.NewSource(int64(iter)))
			mapping, phys := randomEmbeddableCase(t, rng, g)
			logicalBits := RandomAssignment(rng, mapping.QUBO.N())
			physBits := phys.Embed(logicalBits)
			if n := phys.BrokenChains(physBits); n != 0 {
				t.Fatalf("%s iter %d: Embed produced %d broken chains", g.Kind(), iter, n)
			}
			if got := phys.Unembed(physBits); !reflect.DeepEqual(got, logicalBits) {
				t.Fatalf("%s iter %d: Unembed(Embed(x)) != x", g.Kind(), iter)
			}
			eLogical := mapping.QUBO.Energy(logicalBits)
			ePhysical := phys.QUBO.Energy(physBits)
			if math.Abs(eLogical-ePhysical) > tol*math.Max(1, math.Abs(eLogical)) {
				t.Fatalf("%s iter %d: physical energy %v != logical energy %v on a chain-consistent state",
					g.Kind(), iter, ePhysical, eLogical)
			}
		}
	}
}

// TestPropFaultyTopologiesRouteAroundBrokenQubits: on every kind, a
// deterministic fault map never leaks a broken qubit or coupler into an
// embedding, and the energy-preservation property survives the faults.
func TestPropFaultyTopologiesRouteAroundBrokenQubits(t *testing.T) {
	for _, kind := range []string{"chimera", "pegasus", "zephyr"} {
		for iter := 0; iter < embeddingIterations/2; iter++ {
			g, err := topology.NewWithFaults(kind, 12, 12, 55, int64(iter))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(100 + iter)))
			mapping, phys := randomEmbeddableCase(t, rng, g)
			for v, chain := range phys.Emb.Chains {
				for _, q := range chain {
					if !g.Working(q) {
						t.Fatalf("%s iter %d: variable %d uses broken qubit %d", kind, iter, v, q)
					}
				}
			}
			logicalBits := RandomAssignment(rng, mapping.QUBO.N())
			physBits := phys.Embed(logicalBits)
			eLogical := mapping.QUBO.Energy(logicalBits)
			ePhysical := phys.QUBO.Energy(physBits)
			if math.Abs(eLogical-ePhysical) > tol*math.Max(1, math.Abs(eLogical)) {
				t.Fatalf("%s iter %d: faulty-graph energy mismatch: %v != %v", kind, iter, ePhysical, eLogical)
			}
		}
	}
}
