package proptest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/ising"
	"repro/internal/logical"
	"repro/internal/portfolio"
)

// iterations per property; each iteration reseeds from its index so a
// failure report like "iter 17" reproduces deterministically.
const iterations = 300

// tol absorbs float association drift across the mapping chain.
const tol = 1e-6

// TestPropLogicalEnergyMatchesCost is the round-trip invariant of
// Theorem 1: for every valid solution of every instance, the QUBO energy
// of its encoding equals the MQO plan cost minus the constant shift —
// under both the paper's global penalty weights and the per-query
// variant.
func TestPropLogicalEnergyMatchesCost(t *testing.T) {
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		p := RandomProblem(rng)
		sol := RandomSolution(rng, p)
		cost, err := p.Cost(sol)
		if err != nil {
			t.Fatalf("iter %d: random solution invalid: %v", iter, err)
		}
		for name, m := range map[string]*logical.Mapping{
			"global":    logical.Map(p),
			"per-query": logical.MapPerQuery(p),
		} {
			if got := m.CostFromEnergy(m.EnergyOf(sol)); math.Abs(got-cost) > tol {
				t.Errorf("iter %d (%s): energy round-trip cost %v, want %v", iter, name, got, cost)
			}
		}
	}
}

// TestPropEncodeDecodeRoundTrip: decoding the encoding of a valid
// solution returns that solution, strictly and after repair.
func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		p := RandomProblem(rng)
		sol := RandomSolution(rng, p)
		m := logical.Map(p)
		x := m.Encode(sol)
		if got, ok := m.DecodeStrict(x); !ok || !reflect.DeepEqual(got, sol) {
			t.Errorf("iter %d: DecodeStrict(Encode(s)) = %v (ok=%v), want %v", iter, got, ok, sol)
		}
		if got := m.Decode(x); !reflect.DeepEqual(got, sol) {
			t.Errorf("iter %d: Decode(Encode(s)) = %v, want %v", iter, got, sol)
		}
	}
}

// TestPropRepairProducesValid: Repair turns any representable state into
// a valid solution without touching already-valid entries.
func TestPropRepairProducesValid(t *testing.T) {
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		p := RandomProblem(rng)
		s := RandomPartialSolution(rng, p)
		kept := append([]int(nil), s...)
		repaired := p.Repair(s)
		if !p.Valid(repaired) {
			t.Fatalf("iter %d: Repair produced invalid solution %v", iter, repaired)
		}
		for q, pl := range kept {
			if pl >= 0 && pl < p.NumPlans() && p.QueryOf(pl) == q && repaired[q] != pl {
				t.Errorf("iter %d: Repair replaced valid choice %d of query %d with %d",
					iter, pl, q, repaired[q])
			}
		}
	}
}

// TestPropQUBOIsingEnergyPreserved: converting the logical QUBO to Ising
// form and back preserves the energy of every assignment exactly (up to
// float association), including the constant offsets.
func TestPropQUBOIsingEnergyPreserved(t *testing.T) {
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		p := RandomProblem(rng)
		q := logical.Map(p).QUBO
		is := ising.FromQUBO(q)
		back := is.ToQUBO()
		x := RandomAssignment(rng, q.N())
		eQ := q.Energy(x)
		eI := is.Energy(ising.BitsToSpins(x))
		eB := back.Energy(x)
		if math.Abs(eQ-eI) > tol {
			t.Errorf("iter %d: QUBO energy %v != Ising energy %v", iter, eQ, eI)
		}
		if math.Abs(eQ-eB) > tol {
			t.Errorf("iter %d: QUBO→Ising→QUBO energy %v != %v", iter, eB, eQ)
		}
	}
}

// TestPropGaugeInvariance: a random spin-reversal transformation leaves
// the energy of corresponding states unchanged, and undoing the spins
// recovers the original frame.
func TestPropGaugeInvariance(t *testing.T) {
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		p := RandomProblem(rng)
		is := ising.FromQUBO(logical.Map(p).QUBO)
		g := ising.RandomGauge(rng, is.N())
		gauged := is.ApplyGauge(g)
		spins := ising.BitsToSpins(RandomAssignment(rng, is.N()))
		// The gauged problem evaluated at the gauged spins must equal the
		// original problem at the original spins.
		gaugedSpins := make([]int8, len(spins))
		for i, s := range spins {
			if g.Flip[i] {
				gaugedSpins[i] = -s
			} else {
				gaugedSpins[i] = s
			}
		}
		if e0, e1 := is.Energy(spins), gauged.Energy(gaugedSpins); math.Abs(e0-e1) > tol {
			t.Errorf("iter %d: gauge changed energy %v -> %v", iter, e0, e1)
		}
		if got := g.UndoSpins(gaugedSpins); !reflect.DeepEqual(got, spins) {
			t.Errorf("iter %d: UndoSpins mismatch", iter)
		}
	}
}

// TestPropMergeIsPointwiseMinimum: the portfolio merge law — at every
// instant, the merged incumbent cost equals the minimum over the member
// traces' incumbents at that instant, and the merged stream is strictly
// decreasing in cost and nondecreasing in time.
func TestPropMergeIsPointwiseMinimum(t *testing.T) {
	bestAt := func(entries []portfolio.Entry, at time.Duration) float64 {
		best := math.Inf(1)
		for _, e := range entries {
			if e.T <= at && e.Cost < best {
				best = e.Cost
			}
		}
		return best
	}
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		members := make([][]portfolio.Entry, 1+rng.Intn(4))
		for m := range members {
			tt := time.Duration(0)
			cost := 100 + rng.Float64()*100
			for n := rng.Intn(8); len(members[m]) < n; {
				tt += time.Duration(rng.Intn(1000)) * time.Microsecond
				cost -= rng.Float64() * 20
				members[m] = append(members[m], portfolio.Entry{T: tt, Cost: cost, Source: "m"})
			}
		}
		merged := portfolio.Merge(members)
		for i := 1; i < len(merged); i++ {
			if merged[i].Cost >= merged[i-1].Cost {
				t.Fatalf("iter %d: merged stream not strictly decreasing: %v", iter, merged)
			}
			if merged[i].T < merged[i-1].T {
				t.Fatalf("iter %d: merged stream goes back in time: %v", iter, merged)
			}
		}
		var checkpoints []time.Duration
		for _, tr := range members {
			for _, e := range tr {
				checkpoints = append(checkpoints, e.T)
			}
		}
		checkpoints = append(checkpoints, 0, time.Second)
		for _, cp := range checkpoints {
			want := math.Inf(1)
			for _, tr := range members {
				if v := bestAt(tr, cp); v < want {
					want = v
				}
			}
			if got := bestAt(merged, cp); got != want {
				t.Fatalf("iter %d: merged best at %v = %v, want pointwise min %v", iter, cp, got, want)
			}
		}
	}
}
