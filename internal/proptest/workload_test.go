package proptest

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/joingraph"
	"repro/internal/mqo"
)

// workloadIterations is smaller than the energy properties' budget:
// each iteration generates, derives (possibly several times), and
// round-trips a full workload.
const workloadIterations = 60

// randomWorkload draws a generator configuration and seed from rng —
// the generated workload is valid by construction, so the properties
// below exercise the derivation pipeline on varied shapes and skews.
func randomWorkload(rng *rand.Rand) *joingraph.Workload {
	cfg := joingraph.GenConfig{
		Queries:   1 + rng.Intn(12),
		Relations: 5 + rng.Intn(10),
		ZipfS:     1.05 + rng.Float64(),
	}
	return joingraph.Generate(rng.Int63(), cfg)
}

// TestPropDerivedProblemsRevalidate: every derived instance survives a
// fresh pass through the mqo constructor — the derivation never emits
// components the model layer would reject (dangling plan indices,
// non-finite costs, out-of-range savings).
func TestPropDerivedProblemsRevalidate(t *testing.T) {
	for iter := 0; iter < workloadIterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		w := randomWorkload(rng)
		d, err := joingraph.Derive(context.Background(), w, joingraph.DeriveOptions{})
		if err != nil {
			t.Fatalf("iter %d: derive: %v", iter, err)
		}
		p := d.Problem
		if _, err := mqo.New(p.QueryPlans, p.Costs, p.Savings); err != nil {
			t.Errorf("iter %d: derived problem fails revalidation: %v", iter, err)
		}
	}
}

// TestPropSavingsBoundedByPlanCosts: a shared intermediate can never be
// worth more than either plan it connects — otherwise executing both
// plans would cost less than executing the cheaper one alone.
func TestPropSavingsBoundedByPlanCosts(t *testing.T) {
	for iter := 0; iter < workloadIterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		w := randomWorkload(rng)
		d, err := joingraph.Derive(context.Background(), w, joingraph.DeriveOptions{})
		if err != nil {
			t.Fatalf("iter %d: derive: %v", iter, err)
		}
		for _, s := range d.Problem.Savings {
			bound := math.Min(d.Problem.Costs[s.P1], d.Problem.Costs[s.P2])
			if !(s.Value > 0) || s.Value > bound {
				t.Errorf("iter %d: saving (%d,%d)=%v outside (0, %v]",
					iter, s.P1, s.P2, s.Value, bound)
			}
		}
	}
}

// TestPropDeriveDeterministicAcrossParallelism: the derived instance's
// canonical fingerprint is a pure function of the workload — repeated
// runs and any worker count produce the identical problem.
func TestPropDeriveDeterministicAcrossParallelism(t *testing.T) {
	for iter := 0; iter < workloadIterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		w := randomWorkload(rng)
		var want uint64
		for i, paral := range []int{1, 4, 1} {
			d, err := joingraph.Derive(context.Background(), w,
				joingraph.DeriveOptions{Parallelism: paral})
			if err != nil {
				t.Fatalf("iter %d: derive (parallelism %d): %v", iter, paral, err)
			}
			fp := d.Problem.Fingerprint()
			if i == 0 {
				want = fp
			} else if fp != want {
				t.Fatalf("iter %d: fingerprint %016x at parallelism %d, want %016x",
					iter, fp, paral, want)
			}
		}
	}
}

// TestPropWorkloadTextRoundTrip: writing a workload and parsing it back
// preserves the workload fingerprint exactly — the text format loses no
// structure (names, cardinalities, selectivity bits).
func TestPropWorkloadTextRoundTrip(t *testing.T) {
	for iter := 0; iter < workloadIterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		w := randomWorkload(rng)
		var buf bytes.Buffer
		if err := w.WriteText(&buf); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		back, err := joingraph.Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, buf.String())
		}
		if got, want := back.Fingerprint(), w.Fingerprint(); got != want {
			t.Errorf("iter %d: round-trip fingerprint %016x, want %016x", iter, got, want)
		}
	}
}
