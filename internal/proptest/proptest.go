// Package proptest provides property-based testing substrate for the
// whole mapping chain: generators for random MQO instances, solutions,
// and assignments, driven by a seeded *rand.Rand so every failing case
// reproduces from its iteration seed. The properties themselves live in
// this package's tests (run them with `go test -run Prop ./...`): energy
// round-trips across the qubo, ising, and logical layers, embedding
// chain invariants, and the portfolio merge law.
//
// The generators are free-form on purpose: unlike the paper's
// chain-structured workload generator (internal/mqo.Generate), they emit
// arbitrary sharing structure — savings between any plan pair, including
// plans of one query — so the invariants are exercised beyond the shapes
// the harness produces.
package proptest

import (
	"math/rand"

	"repro/internal/mqo"
)

// RandomProblem draws a free-form MQO instance: 1–8 queries with 1–4
// plans each, integer-ish costs in [0, 50), and a random set of savings
// over distinct plan pairs (possibly within one query — legal, and never
// realizable by a valid solution, which is exactly the kind of edge the
// mappings must survive).
func RandomProblem(rng *rand.Rand) *mqo.Problem {
	numQueries := 1 + rng.Intn(8)
	queryPlans := make([][]int, numQueries)
	var costs []float64
	next := 0
	for q := range queryPlans {
		plans := make([]int, 1+rng.Intn(4))
		for i := range plans {
			plans[i] = next
			costs = append(costs, float64(rng.Intn(200))/4)
			next++
		}
		queryPlans[q] = plans
	}
	var savings []mqo.Saving
	seen := map[[2]int]bool{}
	for i := 0; i < rng.Intn(2*next); i++ {
		a, b := rng.Intn(next), rng.Intn(next)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		savings = append(savings, mqo.Saving{P1: a, P2: b, Value: float64(1+rng.Intn(40)) / 4})
	}
	return mqo.MustNew(queryPlans, costs, savings)
}

// RandomSolution draws a uniformly random valid solution of p.
func RandomSolution(rng *rand.Rand, p *mqo.Problem) mqo.Solution {
	return p.RandomSolution(rng)
}

// RandomPartialSolution draws a possibly-invalid solution: entries may be
// -1 (no plan), a plan of the wrong query, or out of range — the states a
// noisy annealer read-out decodes to before repair.
func RandomPartialSolution(rng *rand.Rand, p *mqo.Problem) mqo.Solution {
	s := make(mqo.Solution, p.NumQueries())
	for q := range s {
		switch rng.Intn(4) {
		case 0:
			s[q] = -1
		case 1:
			s[q] = rng.Intn(p.NumPlans()) // any plan, possibly wrong query
		default:
			plans := p.QueryPlans[q]
			s[q] = plans[rng.Intn(len(plans))]
		}
	}
	return s
}

// RandomAssignment draws a uniform binary assignment over n variables.
func RandomAssignment(rng *rand.Rand, n int) []bool {
	x := make([]bool, n)
	for i := range x {
		x[i] = rng.Intn(2) == 1
	}
	return x
}
