package proptest

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/session"
)

// sessionIterations bounds the property budget: every iteration runs at
// least two decomposed solves (the warm epoch and its from-scratch
// twin). Seeds are fixed per iteration, so the properties are exactly
// reproducible — report the iteration number on failure.
const sessionIterations = 12

// sessionPropConfig keeps per-iteration solves cheap: small windows,
// two sweeps, a light per-window annealing budget.
func sessionPropConfig(it int) session.Config {
	return session.Config{Seed: int64(9000 + it), WindowQueries: 4, MaxSweeps: 2, Runs: 16}
}

// sessionState mirrors a session's workload bookkeeping (order
// preserved on removal, incident savings dropped) so the tests can
// build from-scratch twins and inverse deltas.
type sessionState struct {
	rng     *rand.Rand
	next    int
	order   []string
	costs   map[string][]float64
	savings []session.SavingSpec
}

func newSessionState(rng *rand.Rand) *sessionState {
	return &sessionState{rng: rng, costs: map[string][]float64{}}
}

func (st *sessionState) newQuery() session.QuerySpec {
	id := fmt.Sprintf("q%d", st.next)
	st.next++
	costs := make([]float64, 2+st.rng.Intn(3))
	for i := range costs {
		costs[i] = float64(st.rng.Intn(40)) / 2
	}
	return session.QuerySpec{ID: id, Costs: costs}
}

// savingsFor links q to up to two distinct existing queries.
func (st *sessionState) savingsFor(q session.QuerySpec) []session.SavingSpec {
	if len(st.order) == 0 {
		return nil
	}
	var out []session.SavingSpec
	seen := map[string]bool{}
	for n := st.rng.Intn(3); len(out) < n && len(seen) < len(st.order); {
		partner := st.order[st.rng.Intn(len(st.order))]
		if seen[partner] {
			continue
		}
		seen[partner] = true
		out = append(out, session.SavingSpec{
			Q1:    q.ID,
			P1:    st.rng.Intn(len(q.Costs)),
			Q2:    partner,
			P2:    st.rng.Intn(len(st.costs[partner])),
			Value: 1 + float64(st.rng.Intn(10)),
		})
	}
	return out
}

func (st *sessionState) commitAdd(q session.QuerySpec, savings []session.SavingSpec) {
	st.order = append(st.order, q.ID)
	st.costs[q.ID] = q.Costs
	for _, sv := range savings {
		if sv.Q1 > sv.Q2 {
			sv.Q1, sv.P1, sv.Q2, sv.P2 = sv.Q2, sv.P2, sv.Q1, sv.P1
		}
		st.savings = append(st.savings, sv)
	}
}

func (st *sessionState) commitRemove(id string) {
	delete(st.costs, id)
	order := st.order[:0]
	for _, q := range st.order {
		if q != id {
			order = append(order, q)
		}
	}
	st.order = order
	savings := st.savings[:0]
	for _, sv := range st.savings {
		if sv.Q1 != id && sv.Q2 != id {
			savings = append(savings, sv)
		}
	}
	st.savings = savings
}

// fullDelta rebuilds the current workload as one delta.
func (st *sessionState) fullDelta() session.Delta {
	var d session.Delta
	for _, id := range st.order {
		d.AddQueries = append(d.AddQueries, session.QuerySpec{ID: id, Costs: st.costs[id]})
	}
	d.AddSavings = append([]session.SavingSpec(nil), st.savings...)
	return d
}

// TestPropSessionWarmNotWorseThanFromScratch pins the warm-start
// quality law: after a random ±1 delta, the warm-started epoch's
// incumbent costs no more than a from-scratch solve of the identical
// instance under the identical config — the carried-over incumbent
// never hurts.
func TestPropSessionWarmNotWorseThanFromScratch(t *testing.T) {
	ctx := context.Background()
	for it := 0; it < sessionIterations; it++ {
		rng := rand.New(rand.NewSource(int64(4000 + it)))
		cfg := sessionPropConfig(it)
		st := newSessionState(rng)

		s := session.New(cfg)
		var init session.Delta
		for i, n := 0, 6+rng.Intn(8); i < n; i++ {
			q := st.newQuery()
			savings := st.savingsFor(q)
			init.AddQueries = append(init.AddQueries, q)
			init.AddSavings = append(init.AddSavings, savings...)
			st.commitAdd(q, savings)
		}
		if _, err := s.Apply(ctx, init); err != nil {
			t.Fatalf("iteration %d: initial apply: %v", it, err)
		}

		// One random delta: an arrival (with sharing) or a retirement.
		var d session.Delta
		if rng.Intn(2) == 0 || len(st.order) < 2 {
			q := st.newQuery()
			savings := st.savingsFor(q)
			d.AddQueries = []session.QuerySpec{q}
			d.AddSavings = savings
			st.commitAdd(q, savings)
		} else {
			victim := st.order[rng.Intn(len(st.order))]
			d.RemoveQueries = []string{victim}
			st.commitRemove(victim)
		}
		warm, err := s.Apply(ctx, d)
		if err != nil {
			t.Fatalf("iteration %d: delta apply: %v", it, err)
		}

		cold := session.New(cfg)
		scratch, err := cold.Apply(ctx, st.fullDelta())
		if err != nil {
			t.Fatalf("iteration %d: from-scratch apply: %v", it, err)
		}
		if scratch.Fingerprint != warm.Fingerprint {
			t.Fatalf("iteration %d: rebuilt instance fingerprint %016x != session %016x",
				it, scratch.Fingerprint, warm.Fingerprint)
		}
		if warm.Cost > scratch.Cost+1e-9 {
			t.Errorf("iteration %d: warm cost %v worse than from-scratch %v (delta %+v)",
				it, warm.Cost, scratch.Cost, d)
		}
	}
}

// TestPropSessionDeltaInverseRestoresFingerprint pins reversibility:
// a delta that adds queries (with their sharing) and rewrites costs,
// followed by its inverse — remove the added queries, restore the old
// costs — brings the session back to the exact pre-delta instance,
// fingerprint and all.
func TestPropSessionDeltaInverseRestoresFingerprint(t *testing.T) {
	ctx := context.Background()
	for it := 0; it < sessionIterations; it++ {
		rng := rand.New(rand.NewSource(int64(5000 + it)))
		cfg := sessionPropConfig(it)
		st := newSessionState(rng)

		s := session.New(cfg)
		var init session.Delta
		for i, n := 0, 4+rng.Intn(6); i < n; i++ {
			q := st.newQuery()
			savings := st.savingsFor(q)
			init.AddQueries = append(init.AddQueries, q)
			init.AddSavings = append(init.AddSavings, savings...)
			st.commitAdd(q, savings)
		}
		base, err := s.Apply(ctx, init)
		if err != nil {
			t.Fatalf("iteration %d: initial apply: %v", it, err)
		}

		// Forward: 1–2 arrivals plus a cost rewrite of one resident.
		var fwd, inv session.Delta
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			q := st.newQuery()
			fwd.AddQueries = append(fwd.AddQueries, q)
			fwd.AddSavings = append(fwd.AddSavings, st.savingsFor(q)...)
			inv.RemoveQueries = append(inv.RemoveQueries, q.ID)
		}
		victim := st.order[rng.Intn(len(st.order))]
		old := append([]float64(nil), st.costs[victim]...)
		rewritten := make([]float64, len(old))
		for i := range rewritten {
			rewritten[i] = float64(st.rng.Intn(40)) / 2
		}
		fwd.UpdateCosts = []session.QuerySpec{{ID: victim, Costs: rewritten}}
		inv.UpdateCosts = []session.QuerySpec{{ID: victim, Costs: old}}

		if _, err := s.Apply(ctx, fwd); err != nil {
			t.Fatalf("iteration %d: forward delta: %v", it, err)
		}
		restored, err := s.Apply(ctx, inv)
		if err != nil {
			t.Fatalf("iteration %d: inverse delta: %v", it, err)
		}
		if restored.Fingerprint != base.Fingerprint {
			t.Errorf("iteration %d: inverse delta fingerprint %016x != pre-delta %016x",
				it, restored.Fingerprint, base.Fingerprint)
		}
	}
}
