package autotune

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/hashutil"
	"repro/internal/splitmix"
	"repro/internal/topology"
)

// ModelVersion is the current model artifact version. Decode rejects
// any other value: a format change bumps the version instead of
// silently reinterpreting old files.
const ModelVersion = 1

// Decode bounds, sized far above any honest model so hostile files
// fail fast instead of allocating.
const (
	maxArms           = 64
	maxMembersPerArm  = 16
	maxClasses        = 4096
	maxSweeps         = 1 << 20
	maxClassKeyLength = 64
)

// ucbC is the UCB exploration constant: mean + ucbC·sqrt(ln N / n).
// It is scaled to the observed reward geometry, not the textbook
// sqrt(2): modeled rewards are near-deterministic (seed noise ≈ ±0.02)
// and arm gaps sit around 0.02–0.05, so a textbook constant would keep
// every arm's confidence radius above the gaps and rotate the
// inventory forever. At 0.03 a once-pulled arm's bonus does not
// re-cross a 0.05 gap until its class has seen several hundred pulls —
// converged at panel horizons, still log-periodically re-checking
// under sustained load.
const ucbC = 0.03

// classStats is the recorded history of one shape class: per-arm pull
// counts and reward sums, indexed by arm position.
type classStats struct {
	Counts  []int64   `json:"counts"`
	Rewards []float64 `json:"rewards"`
}

// Model is the learned scheduler state: an arm inventory plus per-class
// bandit statistics. All methods are safe for concurrent use; reads of
// a fixed history are deterministic.
type Model struct {
	mu      sync.Mutex
	arms    []Arm
	classes map[string]*classStats
}

// NewModel builds an empty model over the given arm inventory (nil
// selects DefaultArms).
func NewModel(arms []Arm) *Model {
	if len(arms) == 0 {
		arms = DefaultArms()
	}
	cp := make([]Arm, len(arms))
	for i, a := range arms {
		cp[i] = Arm{Members: append([]string(nil), a.Members...), Topology: a.Topology, Sweeps: a.Sweeps}
	}
	return &Model{arms: cp, classes: map[string]*classStats{}}
}

// Arms returns a copy of the inventory in model order.
func (m *Model) Arms() []Arm {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Arm, len(m.arms))
	for i, a := range m.arms {
		out[i] = Arm{Members: append([]string(nil), a.Members...), Topology: a.Topology, Sweeps: a.Sweeps}
	}
	return out
}

// Pick is the result of one scheduling decision.
type Pick struct {
	Class string // shape-class key the decision was filed under
	Index int    // arm index into the model's inventory
	Arm   Arm    // the picked configuration
	Cold  bool   // true when the class had no recorded history yet
	// Explore is true when the pick was forced exploration of an arm the
	// class had never played — the scheduler spending, not exploiting.
	// Cold implies Explore.
	Explore bool
}

// Pick selects the arm to spend f's solve on. Unplayed eligible arms
// go first (in inventory order); afterwards the highest UCB score
// wins, with exact ties broken by a splitmix draw seeded from the
// class hash and its observation count — no wall-clock input anywhere,
// so identical recorded history yields identical picks.
func (m *Model) Pick(f Features) (Pick, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eligible := make([]int, 0, len(m.arms))
	for i, a := range m.arms {
		if a.NeedsWorkload() && !f.Workload {
			continue
		}
		eligible = append(eligible, i)
	}
	if len(eligible) == 0 {
		return Pick{}, errors.New("autotune: no eligible arm (workload-only inventory, non-workload problem)")
	}
	class := f.Class()
	st := m.classes[class]
	if st == nil {
		st = &classStats{Counts: make([]int64, len(m.arms)), Rewards: make([]float64, len(m.arms))}
	}
	var total int64
	for _, i := range eligible {
		total += st.Counts[i]
	}
	// Forced exploration: every eligible arm gets pulled once before
	// any scoring happens.
	for _, i := range eligible {
		if st.Counts[i] == 0 {
			return Pick{Class: class, Index: i, Arm: m.armCopy(i), Cold: total == 0, Explore: true}, nil
		}
	}
	best, bestScore := -1, math.Inf(-1)
	var tied []int
	for _, i := range eligible {
		n := float64(st.Counts[i])
		score := st.Rewards[i]/n + ucbC*math.Sqrt(math.Log(float64(total))/n)
		switch {
		case score > bestScore:
			best, bestScore = i, score
			tied = tied[:0]
		case score == bestScore:
			if len(tied) == 0 {
				tied = append(tied, best)
			}
			tied = append(tied, i)
		}
	}
	if len(tied) > 1 {
		draw := splitmix.Split(classSeed(class), total)
		best = tied[int(uint64(draw)%uint64(len(tied)))]
	}
	return Pick{Class: class, Index: best, Arm: m.armCopy(best)}, nil
}

func (m *Model) armCopy(i int) Arm {
	a := m.arms[i]
	return Arm{Members: append([]string(nil), a.Members...), Topology: a.Topology, Sweeps: a.Sweeps}
}

// Observe records the reward of one completed solve under the class of
// f. Out-of-range arm indices are rejected rather than ignored so a
// wiring bug cannot silently skew the history.
func (m *Model) Observe(f Features, arm int, r Reward) error {
	return m.ObserveValue(f, arm, r.Value())
}

// ObserveValue records a pre-computed reward value, clamped into [0, 1]
// like Reward.Value. The harness's grid replay uses it to feed the
// bandit exactly the rewards it measured.
func (m *Model) ObserveValue(f Features, arm int, value float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if arm < 0 || arm >= len(m.arms) {
		return fmt.Errorf("autotune: observe arm %d out of range [0,%d)", arm, len(m.arms))
	}
	if math.IsNaN(value) {
		value = 0
	}
	value = math.Min(1, math.Max(0, value))
	class := f.Class()
	st := m.classes[class]
	if st == nil {
		st = &classStats{Counts: make([]int64, len(m.arms)), Rewards: make([]float64, len(m.arms))}
		m.classes[class] = st
	}
	st.Counts[arm]++
	st.Rewards[arm] += value
	return nil
}

// Stats summarises the recorded history.
type Stats struct {
	Arms         int    `json:"arms"`
	Classes      int    `json:"classes"`
	Observations int64  `json:"observations"`
	Fingerprint  uint64 `json:"fingerprint"`
}

// Stats reports inventory size, class count, total observations, and
// the model fingerprint.
func (m *Model) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Arms: len(m.arms), Classes: len(m.classes), Fingerprint: m.fingerprintLocked()}
	for _, st := range m.classes {
		for _, c := range st.Counts {
			s.Observations += c
		}
	}
	return s
}

// modelJSON is the wire form of the artifact.
type modelJSON struct {
	Version int                   `json:"version"`
	Arms    []Arm                 `json:"arms"`
	Classes map[string]classStats `json:"classes"`
}

// Encode writes the model canonically: fixed field order, class keys
// sorted (encoding/json orders map keys), shortest float formatting,
// two-space indent, trailing newline. Equal histories encode to equal
// bytes.
func (m *Model) Encode(w io.Writer) error {
	m.mu.Lock()
	doc := modelJSON{Version: ModelVersion, Arms: m.arms, Classes: make(map[string]classStats, len(m.classes))}
	for k, st := range m.classes {
		doc.Classes[k] = classStats{
			Counts:  append([]int64(nil), st.Counts...),
			Rewards: append([]float64(nil), st.Rewards...),
		}
	}
	m.mu.Unlock()
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Fingerprint hashes the full model state — version, inventory, and
// per-class history in sorted key order — into the stamp served by
// GET /model and /stats.
func (m *Model) Fingerprint() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fingerprintLocked()
}

func (m *Model) fingerprintLocked() uint64 {
	return hashutil.Sum64(func(w io.Writer) {
		hashutil.WriteInt(w, ModelVersion)
		hashutil.WriteInt(w, len(m.arms))
		for _, a := range m.arms {
			hashutil.WriteInt(w, len(a.Members))
			for _, mem := range a.Members {
				hashutil.WriteString(w, mem)
			}
			hashutil.WriteString(w, a.Topology)
			hashutil.WriteInt(w, a.Sweeps)
		}
		hashutil.WriteInt(w, len(m.classes))
		for _, k := range sortedKeys(m.classes) {
			hashutil.WriteString(w, k)
			st := m.classes[k]
			for i := range st.Counts {
				hashutil.WriteU64(w, uint64(st.Counts[i]))
				hashutil.WriteF64(w, st.Rewards[i])
			}
		}
	})
}

// Decode reads one model artifact strictly: unknown fields, trailing
// data, version skew, oversize inventories, ragged per-class vectors,
// negative counts, and non-finite or out-of-range reward sums are all
// errors. It builds a fresh model and never mutates any existing one —
// a failed reload leaves the running scheduler untouched.
func Decode(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc modelJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("autotune: decoding model: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("autotune: trailing data after model document")
	}
	if doc.Version != ModelVersion {
		return nil, fmt.Errorf("autotune: model version %d, want %d", doc.Version, ModelVersion)
	}
	if len(doc.Arms) == 0 || len(doc.Arms) > maxArms {
		return nil, fmt.Errorf("autotune: %d arms, want 1..%d", len(doc.Arms), maxArms)
	}
	kinds := map[string]bool{}
	for _, k := range topology.Kinds() {
		kinds[k] = true
	}
	for i, a := range doc.Arms {
		if len(a.Members) == 0 || len(a.Members) > maxMembersPerArm {
			return nil, fmt.Errorf("autotune: arm %d has %d members, want 1..%d", i, len(a.Members), maxMembersPerArm)
		}
		for _, mem := range a.Members {
			if mem == "" || mem == "portfolio" || mem == "autotune" {
				return nil, fmt.Errorf("autotune: arm %d has invalid member %q", i, mem)
			}
		}
		if a.Topology != "" && !kinds[a.Topology] {
			return nil, fmt.Errorf("autotune: arm %d topology %q not in %v", i, a.Topology, topology.Kinds())
		}
		if a.Sweeps < 0 || a.Sweeps > maxSweeps {
			return nil, fmt.Errorf("autotune: arm %d sweeps %d out of range [0,%d]", i, a.Sweeps, maxSweeps)
		}
	}
	if len(doc.Classes) > maxClasses {
		return nil, fmt.Errorf("autotune: %d classes, max %d", len(doc.Classes), maxClasses)
	}
	model := NewModel(doc.Arms)
	for key, st := range doc.Classes {
		if key == "" || len(key) > maxClassKeyLength {
			return nil, fmt.Errorf("autotune: invalid class key %q", key)
		}
		if len(st.Counts) != len(doc.Arms) || len(st.Rewards) != len(doc.Arms) {
			return nil, fmt.Errorf("autotune: class %q vectors sized %d/%d, want %d",
				key, len(st.Counts), len(st.Rewards), len(doc.Arms))
		}
		for i := range st.Counts {
			if st.Counts[i] < 0 {
				return nil, fmt.Errorf("autotune: class %q arm %d count %d is negative", key, i, st.Counts[i])
			}
			r := st.Rewards[i]
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > float64(st.Counts[i])+1e-9 {
				return nil, fmt.Errorf("autotune: class %q arm %d reward sum %g outside [0, count=%d]",
					key, i, r, st.Counts[i])
			}
		}
		model.classes[key] = &classStats{
			Counts:  append([]int64(nil), st.Counts...),
			Rewards: append([]float64(nil), st.Rewards...),
		}
	}
	return model, nil
}

// DecodeBytes is Decode over an in-memory artifact.
func DecodeBytes(data []byte) (*Model, error) { return Decode(bytes.NewReader(data)) }

// EncodeBytes renders the canonical artifact in memory.
func (m *Model) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
