package autotune

import (
	"testing"
	"time"
)

// BenchmarkAutoTunePick measures one scheduling decision against a
// model warmed with a realistic multi-class history — the per-request
// overhead the service pays for self-tuning.
func BenchmarkAutoTunePick(b *testing.B) {
	m := NewModel(nil)
	feats := make([]Features, 16)
	for i := range feats {
		feats[i] = Features{
			Queries:     4 + i*3,
			Plans:       12 + i*7,
			Savings:     5 + i*4,
			Workload:    i%2 == 0,
			Fingerprint: uint64(i) * 0x9e3779b97f4a7c15,
		}
	}
	for round := 0; round < 20; round++ {
		for _, f := range feats {
			p, err := m.Pick(f)
			if err != nil {
				b.Fatal(err)
			}
			m.Observe(f, p.Index, Reward{Baseline: 100, Final: float64(50 + round), Budget: time.Second,
				TimeToBest: time.Duration(round) * 10 * time.Millisecond})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pick(feats[i%len(feats)]); err != nil {
			b.Fatal(err)
		}
	}
}
