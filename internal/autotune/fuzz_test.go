package autotune

import (
	"bytes"
	"testing"
	"time"
)

// FuzzTuneModelJSON hammers the strict decoder: malformed or hostile
// model files must never panic, and a failed decode must leave any
// already-loaded model untouched (Decode builds fresh state, so the
// loaded model's fingerprint is the witness). Accepted documents must
// re-encode canonically: encode→decode→encode is byte-stable.
func FuzzTuneModelJSON(f *testing.F) {
	loadedSeed := NewModel(nil)
	ff := testFeatures(7, true)
	for i := 0; i < 5; i++ {
		p, _ := loadedSeed.Pick(ff)
		loadedSeed.Observe(ff, p.Index, Reward{Baseline: 20, Final: 10, Budget: time.Second})
	}
	seed, err := loadedSeed.EncodeBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1,"arms":[{"members":["qa"]}],"classes":{}}`))
	f.Add([]byte(`{"version":1,"arms":[{"members":["qa"],"topology":"pegasus","sweeps":32}],` +
		`"classes":{"q3f3d0w1":{"counts":[2],"rewards":[1.5]}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version":1e9}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := DecodeBytes(seed)
		if err != nil {
			t.Fatalf("seed model stopped decoding: %v", err)
		}
		before := loaded.Fingerprint()

		m, err := DecodeBytes(data)
		if loaded.Fingerprint() != before {
			t.Fatal("decoding unrelated bytes mutated the loaded model")
		}
		if err != nil {
			return
		}
		// Accepted documents must be usable and canonically re-encodable.
		enc1, err := m.EncodeBytes()
		if err != nil {
			t.Fatalf("accepted model failed to encode: %v", err)
		}
		m2, err := DecodeBytes(enc1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, enc1)
		}
		enc2, err := m2.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if m.Fingerprint() != m2.Fingerprint() {
			t.Fatal("fingerprint drifted across a canonical round trip")
		}
		if p, err := m.Pick(testFeatures(3, true)); err == nil {
			if err := m.Observe(testFeatures(3, true), p.Index, Reward{Baseline: 1, Final: 0.5, Budget: time.Second}); err != nil {
				t.Fatalf("observe after decoded pick: %v", err)
			}
		}
	})
}
