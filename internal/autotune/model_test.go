package autotune

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mqo"
)

func testFeatures(fp uint64, workload bool) Features {
	return Features{Queries: 6, Plans: 18, Savings: 12, Workload: workload, Fingerprint: fp}
}

func TestClassKeyBucketsNotInstances(t *testing.T) {
	a := Features{Queries: 6, Plans: 18, Savings: 12, Workload: true, Fingerprint: 8}
	b := Features{Queries: 7, Plans: 20, Savings: 13, Workload: true, Fingerprint: 16}
	if a.Class() != b.Class() {
		t.Fatalf("near-identical shapes should share a class: %q vs %q", a.Class(), b.Class())
	}
	c := Features{Queries: 500, Plans: 1000, Savings: 400, Workload: false, Fingerprint: 8}
	if a.Class() == c.Class() {
		t.Fatalf("very different shapes should not share a class: %q", a.Class())
	}
	if !strings.Contains(a.Class(), "w") || strings.Contains(c.Class(), "w") {
		t.Fatalf("workload flag missing from class keys %q / %q", a.Class(), c.Class())
	}
}

func TestPickExploresUnplayedArmsFirst(t *testing.T) {
	m := NewModel(nil)
	f := testFeatures(1, true)
	seen := map[int]bool{}
	n := len(m.Arms())
	for i := 0; i < n; i++ {
		p, err := m.Pick(f)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.Index] {
			t.Fatalf("arm %d picked twice during forced exploration", p.Index)
		}
		if (i == 0) != p.Cold {
			t.Fatalf("pick %d: Cold=%v", i, p.Cold)
		}
		seen[p.Index] = true
		if err := m.Observe(f, p.Index, Reward{Baseline: 10, Final: 9, Budget: time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != n {
		t.Fatalf("explored %d arms, want %d", len(seen), n)
	}
}

func TestPickEligibilityFiltersWorkloadArms(t *testing.T) {
	m := NewModel(nil)
	f := testFeatures(1, false)
	for i := 0; i < 50; i++ {
		p, err := m.Pick(f)
		if err != nil {
			t.Fatal(err)
		}
		if p.Arm.NeedsWorkload() {
			t.Fatalf("workload-only arm %s picked for a bare problem", p.Arm.Key())
		}
		if err := m.Observe(f, p.Index, Reward{Baseline: 10, Final: 10, Budget: time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewModel([]Arm{{Members: []string{"greedy-join"}}}).Pick(f); err == nil {
		t.Fatal("want error when every arm needs a workload")
	}
}

func TestPickConvergesToBestArm(t *testing.T) {
	m := NewModel(nil)
	f := testFeatures(1, true)
	// Arm 6 (greedy-join) gets reward ~0.95, everything else ~0.2.
	for i := 0; i < 200; i++ {
		p, err := m.Pick(f)
		if err != nil {
			t.Fatal(err)
		}
		r := Reward{Baseline: 100, Final: 80, Budget: time.Second, TimeToBest: 900 * time.Millisecond}
		if p.Arm.Key() == "greedy-join" {
			r = Reward{Baseline: 100, Final: 2, Budget: time.Second, TimeToBest: 10 * time.Millisecond}
		}
		if err := m.Observe(f, p.Index, r); err != nil {
			t.Fatal(err)
		}
	}
	if stats := m.Stats(); stats.Observations != 200 {
		t.Fatalf("recorded %d observations, want 200", stats.Observations)
	}
	st := m.classes[f.Class()]
	dominant := -1
	for i, a := range m.Arms() {
		if a.Key() == "greedy-join" {
			dominant = i
		}
	}
	if st.Counts[dominant] < 120 {
		t.Fatalf("dominant arm got %d/200 pulls; bandit failed to converge (counts %v)",
			st.Counts[dominant], st.Counts)
	}
}

// TestPickDeterministicAtAnyParallelism is the proptest law of the
// determinism contract: identical recorded history ⇒ identical
// (members, topology, sweeps) picks, whether the model is read by one
// goroutine or by eight concurrently.
func TestPickDeterministicAtAnyParallelism(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		rng := rand.New(rand.NewSource(int64(1000 + iter)))
		history := make([]struct {
			f   Features
			arm int
			r   Reward
		}, 40+rng.Intn(60))
		arms := DefaultArms()
		for i := range history {
			history[i].f = Features{
				Queries:     1 + rng.Intn(40),
				Plans:       2 + rng.Intn(120),
				Savings:     rng.Intn(200),
				Workload:    rng.Intn(2) == 0,
				Fingerprint: rng.Uint64(),
			}
			history[i].arm = rng.Intn(len(arms))
			history[i].r = Reward{
				Baseline:   1 + rng.Float64()*100,
				Final:      rng.Float64() * 100,
				TimeToBest: time.Duration(rng.Int63n(int64(time.Second))),
				Budget:     time.Second,
			}
		}
		build := func() *Model {
			m := NewModel(arms)
			for _, h := range history {
				if err := m.Observe(h.f, h.arm, h.r); err != nil {
					t.Fatal(err)
				}
			}
			return m
		}
		probes := make([]Features, 16)
		for i := range probes {
			probes[i] = history[rng.Intn(len(history))].f
		}

		seq := build()
		want := make([]Pick, len(probes))
		for i, f := range probes {
			p, err := seq.Pick(f)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = p
		}

		par := build()
		got := make([]Pick, len(probes))
		var wg sync.WaitGroup
		sem := make(chan struct{}, 8)
		for i, f := range probes {
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				p, err := par.Pick(f)
				if err != nil {
					t.Error(err)
					return
				}
				got[i] = p
			}()
		}
		wg.Wait()
		for i := range probes {
			if want[i].Index != got[i].Index || want[i].Class != got[i].Class ||
				want[i].Arm.Key() != got[i].Arm.Key() {
				t.Fatalf("iter %d probe %d: sequential pick %v, parallel pick %v", iter, i, want[i], got[i])
			}
		}
		if seq.Fingerprint() != par.Fingerprint() {
			t.Fatalf("iter %d: identical history, different fingerprints", iter)
		}
	}
}

func TestEncodeDecodeRoundTripIsCanonical(t *testing.T) {
	m := NewModel(nil)
	f1, f2 := testFeatures(1, true), testFeatures(999, false)
	for i := 0; i < 25; i++ {
		for _, f := range []Features{f1, f2} {
			p, err := m.Pick(f)
			if err != nil {
				t.Fatal(err)
			}
			m.Observe(f, p.Index, Reward{Baseline: 50, Final: float64(40 - i), Budget: time.Second,
				TimeToBest: time.Duration(i) * time.Millisecond})
		}
	}
	enc1, err := m.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(enc1)
	if err != nil {
		t.Fatalf("round-trip decode: %v\n%s", err, enc1)
	}
	enc2, err := back.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("encode→decode→encode is not byte-stable")
	}
	if m.Fingerprint() != back.Fingerprint() {
		t.Fatalf("fingerprint drifted across round trip: %x vs %x", m.Fingerprint(), back.Fingerprint())
	}
	// The decoded model must continue the same policy.
	for i := 0; i < 10; i++ {
		pa, _ := m.Pick(f1)
		pb, _ := back.Pick(f1)
		if pa.Index != pb.Index {
			t.Fatalf("pick %d diverged after round trip: %d vs %d", i, pa.Index, pb.Index)
		}
		m.Observe(f1, pa.Index, Reward{Baseline: 10, Final: 5, Budget: time.Second})
		back.Observe(f1, pb.Index, Reward{Baseline: 10, Final: 5, Budget: time.Second})
	}
}

func TestDecodeRejectsHostileModels(t *testing.T) {
	valid, err := NewModel(nil).EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"empty":            ``,
		"not json":         `nope`,
		"unknown field":    `{"version":1,"arms":[{"members":["qa"]}],"classes":{},"extra":1}`,
		"trailing data":    string(valid) + `{"version":1}`,
		"bad version":      `{"version":2,"arms":[{"members":["qa"]}],"classes":{}}`,
		"no arms":          `{"version":1,"arms":[],"classes":{}}`,
		"empty member":     `{"version":1,"arms":[{"members":[""]}],"classes":{}}`,
		"recursive member": `{"version":1,"arms":[{"members":["portfolio"]}],"classes":{}}`,
		"bad topology":     `{"version":1,"arms":[{"members":["qa"],"topology":"torus"}],"classes":{}}`,
		"negative sweeps":  `{"version":1,"arms":[{"members":["qa"],"sweeps":-1}],"classes":{}}`,
		"ragged class":     `{"version":1,"arms":[{"members":["qa"]}],"classes":{"c":{"counts":[1,2],"rewards":[0.5]}}}`,
		"negative count":   `{"version":1,"arms":[{"members":["qa"]}],"classes":{"c":{"counts":[-1],"rewards":[0]}}}`,
		"negative reward":  `{"version":1,"arms":[{"members":["qa"]}],"classes":{"c":{"counts":[1],"rewards":[-0.5]}}}`,
		"reward > count":   `{"version":1,"arms":[{"members":["qa"]}],"classes":{"c":{"counts":[1],"rewards":[2.5]}}}`,
		"empty class key":  `{"version":1,"arms":[{"members":["qa"]}],"classes":{"":{"counts":[1],"rewards":[0.5]}}}`,
	}
	for name, doc := range cases {
		if _, err := DecodeBytes([]byte(doc)); err == nil {
			t.Errorf("%s: decode accepted a hostile model", name)
		}
	}
	if _, err := DecodeBytes(valid); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestRewardValueBoundsAndShape(t *testing.T) {
	cases := []struct {
		name string
		r    Reward
	}{
		{"zero", Reward{}},
		{"worse than baseline", Reward{Baseline: 10, Final: 20, Budget: time.Second}},
		{"nan final", Reward{Baseline: 10, Final: math.NaN(), Budget: time.Second}},
		{"inf final", Reward{Baseline: 10, Final: math.Inf(1), Budget: time.Second}},
		{"zero budget", Reward{Baseline: 10, Final: 5}},
		{"ttb over budget", Reward{Baseline: 10, Final: 5, TimeToBest: 2 * time.Second, Budget: time.Second}},
	}
	for _, tc := range cases {
		if v := tc.r.Value(); v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("%s: value %g outside [0,1]", tc.name, v)
		}
	}
	fast := Reward{Baseline: 100, Final: 10, TimeToBest: 10 * time.Millisecond, Budget: time.Second}
	slow := Reward{Baseline: 100, Final: 10, TimeToBest: 900 * time.Millisecond, Budget: time.Second}
	if fast.Value() <= slow.Value() {
		t.Fatal("a faster time-to-best must score higher at equal final cost")
	}
	good := Reward{Baseline: 100, Final: 10, TimeToBest: 500 * time.Millisecond, Budget: time.Second}
	bad := Reward{Baseline: 100, Final: 90, TimeToBest: 500 * time.Millisecond, Budget: time.Second}
	if good.Value() <= bad.Value() {
		t.Fatal("a lower final cost must score higher at equal speed")
	}
}

func TestBaselineCost(t *testing.T) {
	p := mqo.MustNew([][]int{{0, 1}, {2, 3}}, []float64{5, 3, 7, 2}, nil)
	if got := BaselineCost(p); got != 5 {
		t.Fatalf("baseline %g, want 5 (3+2)", got)
	}
}

func TestObserveRejectsOutOfRangeArm(t *testing.T) {
	m := NewModel(nil)
	if err := m.Observe(testFeatures(1, true), len(m.Arms()), Reward{}); err == nil {
		t.Fatal("want error for out-of-range arm index")
	}
	if err := m.Observe(testFeatures(1, true), -1, Reward{}); err == nil {
		t.Fatal("want error for negative arm index")
	}
}

func TestArmKeyAndModeled(t *testing.T) {
	a := Arm{Members: []string{"qa", "greedy-join"}, Topology: "pegasus", Sweeps: 32}
	if got := a.Key(); got != "qa+greedy-join@pegasus/s32" {
		t.Fatalf("key %q", got)
	}
	if (Arm{Members: []string{"qa", "climb"}}).Modeled() {
		t.Fatal("climb charges a wall clock; the arm is not modeled")
	}
	if !a.Modeled() || !a.NeedsWorkload() {
		t.Fatal("qa+greedy-join is modeled and needs a workload")
	}
	modeled := ModeledArms(DefaultArms())
	if len(modeled) == 0 || len(modeled) == len(DefaultArms()) {
		t.Fatalf("ModeledArms kept %d of %d arms; want a strict non-empty subset",
			len(modeled), len(DefaultArms()))
	}
}

func TestStats(t *testing.T) {
	m := NewModel(nil)
	f := testFeatures(1, true)
	for i := 0; i < 7; i++ {
		p, _ := m.Pick(f)
		m.Observe(f, p.Index, Reward{Baseline: 10, Final: 5, Budget: time.Second})
	}
	s := m.Stats()
	if s.Arms != len(DefaultArms()) || s.Classes != 1 || s.Observations != 7 {
		t.Fatalf("stats %+v", s)
	}
	if s.Fingerprint != m.Fingerprint() {
		t.Fatal("stats fingerprint disagrees with Fingerprint()")
	}
}
