// Package autotune closes the measure-then-specialize loop over the
// portfolio: it classifies an incoming problem into a coarse shape
// class, and a per-class UCB bandit picks which portfolio lineup,
// annealer topology, and sweep budget to spend the solve on. Rewards
// come from portfolio.Merge attributions (modeled final gap plus
// modeled time-to-best), so the learned model reflects the same
// modeled clocks the rest of the repro reports.
//
// The scheduler is deterministic given its recorded history: picks use
// no wall-clock input, and score ties break by a splitmix draw seeded
// from the class hash and observation count. Identical history
// therefore yields identical (members, topology, sweeps) picks at any
// parallelism; the nondeterminism of a concurrent deployment lives
// entirely in which history gets recorded, never in how a given
// history is read.
package autotune

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"repro/internal/hashutil"
	"repro/internal/mqo"
)

// Features are the shape-class coordinates of one problem. They are
// deliberately coarse: the bandit needs every class to recur across a
// workload stream, so features bucket aggressively rather than
// memorize instances.
type Features struct {
	Queries     int    // number of queries
	Plans       int    // total alternative plans
	Savings     int    // pairwise sharing opportunities
	Workload    bool   // join-graph provenance available (greedy-join eligible)
	Fingerprint uint64 // problem fingerprint; only its bucket enters the class
}

// FeaturesOf extracts Features from a problem. workload reports whether
// join-graph provenance travels with the solve.
func FeaturesOf(p *mqo.Problem, workload bool) Features {
	return Features{
		Queries:     p.NumQueries(),
		Plans:       p.NumPlans(),
		Savings:     len(p.Savings),
		Workload:    workload,
		Fingerprint: p.Fingerprint(),
	}
}

// Class renders the shape-class key: log2-bucketed query count,
// rounded plan fan-out, savings-density quintile, a small fingerprint
// bucket, and the workload flag. Problems that should share a learned
// policy collide here on purpose.
func (f Features) Class() string {
	q := bits.Len(uint(max(f.Queries, 1))) // log2 bucket: 1,2,2,3,3,3,3,4...
	fan := 0
	if f.Queries > 0 {
		fan = (f.Plans + f.Queries - 1) / f.Queries // ceil plans per query
	}
	// Savings density relative to the all-pairs ceiling, in quintiles.
	dens := 0
	if pairs := f.Plans * (f.Plans - 1) / 2; pairs > 0 {
		dens = int(math.Min(4, 5*float64(f.Savings)/float64(pairs)))
	}
	wl := "-"
	if f.Workload {
		wl = "w"
	}
	return fmt.Sprintf("q%df%dd%d%s%d", q, fan, dens, wl, f.Fingerprint%8)
}

// classSeed hashes a class key into the base seed of its tie-break
// stream.
func classSeed(class string) int64 {
	return int64(hashutil.Sum64(func(w io.Writer) { hashutil.WriteString(w, class) }))
}

// Arm is one schedulable configuration: a portfolio lineup plus the
// topology kind and sweep budget its qa members run under. Zero-valued
// Topology/Sweeps mean "leave the caller's defaults alone".
type Arm struct {
	Members  []string `json:"members"`
	Topology string   `json:"topology,omitempty"`
	Sweeps   int      `json:"sweeps,omitempty"`
}

// Key renders the arm canonically, e.g. "qa+greedy-join@pegasus/s32".
func (a Arm) Key() string {
	var b strings.Builder
	b.WriteString(strings.Join(a.Members, "+"))
	if a.Topology != "" {
		b.WriteString("@" + a.Topology)
	}
	if a.Sweeps > 0 {
		fmt.Fprintf(&b, "/s%d", a.Sweeps)
	}
	return b.String()
}

// NeedsWorkload reports whether the arm contains a member that only
// runs with join-graph provenance.
func (a Arm) NeedsWorkload() bool {
	for _, m := range a.Members {
		if m == "greedy-join" {
			return true
		}
	}
	return false
}

// modeledMembers are the solvers whose traces run on modeled clocks;
// arms drawn only from this set produce machine-independent rewards.
var modeledMembers = map[string]bool{
	"qa":          true,
	"qa-series":   true,
	"greedy-join": true,
}

// Modeled reports whether every member of the arm charges a modeled
// clock, making its reward — and hence the learned model — reproducible
// across machines. Wall-clock members (climb, ga...) still solve fine;
// their rewards just encode local hardware speed.
func (a Arm) Modeled() bool {
	for _, m := range a.Members {
		if !modeledMembers[m] {
			return false
		}
	}
	return true
}

// DefaultArms is the stock inventory: the historical static default
// portfolio, qa specialised per topology and sweep budget, and the
// workload-native lineups. Arm order is part of the model format — a
// model's per-class vectors index into its own recorded arm list — and
// it doubles as the forced-exploration order for a cold class, so the
// strongest-prior lineups come first: a class seen only once or twice
// still gets sensible picks.
func DefaultArms() []Arm {
	return []Arm{
		{Members: []string{"qa", "climb", "ga50"}}, // the pre-autotune default
		{Members: []string{"qa", "greedy-join"}, Topology: "chimera", Sweeps: 64},
		{Members: []string{"greedy-join"}},
		{Members: []string{"qa"}, Topology: "chimera", Sweeps: 64},
		{Members: []string{"qa"}, Topology: "pegasus", Sweeps: 32},
		{Members: []string{"qa", "greedy-join"}, Topology: "pegasus", Sweeps: 32},
		{Members: []string{"qa"}, Topology: "zephyr", Sweeps: 32},
	}
}

// ModeledArms filters arms down to the reproducible subset — the
// inventory the byte-compared harness panel replays.
func ModeledArms(arms []Arm) []Arm {
	out := make([]Arm, 0, len(arms))
	for _, a := range arms {
		if a.Modeled() {
			out = append(out, a)
		}
	}
	return out
}

// BaselineCost is the problem-intrinsic reward anchor: the cost of
// picking every query's cheapest plan while harvesting no sharing at
// all. Every solver starts at or below it, so reward normalisation is
// unbiased across arms (an arm whose first incumbent is already good
// is not penalised for leaving less room to improve).
func BaselineCost(p *mqo.Problem) float64 {
	total := 0.0
	for _, plans := range p.QueryPlans {
		best := math.Inf(1)
		for _, pl := range plans {
			if c := p.Costs[pl]; c < best {
				best = c
			}
		}
		total += best
	}
	return total
}

// Reward grades one solve. Value blends the modeled final gap below the
// no-sharing baseline (weight 3/4) with modeled time-to-best on a log
// scale against the budget (weight 1/4), clamped into [0, 1].
type Reward struct {
	Baseline   float64       // BaselineCost of the instance
	Final      float64       // merged incumbent cost at budget
	TimeToBest time.Duration // modeled T of the last merged improvement
	Budget     time.Duration // the solve budget
}

// Value folds the reward into a single [0, 1] score. The speed term is
// logarithmic — 1 − ln(1+ttb)/ln(1+budget) — because anytime solvers
// routinely finish orders of magnitude inside their budget: a linear
// ttb/budget ratio would score 30 µs and 3 ms identically against a
// 400 ms budget, and the bandit could never learn which arm is fast.
func (r Reward) Value() float64 {
	gain := 0.0
	if denom := math.Max(math.Abs(r.Baseline), 1e-9); denom > 0 {
		gain = (r.Baseline - r.Final) / denom
	}
	gain = math.Min(1, math.Max(0, gain))
	speed := 0.0
	if r.Budget > 0 && r.TimeToBest >= 0 {
		speed = 1 - math.Log1p(float64(r.TimeToBest))/math.Log1p(float64(r.Budget))
		speed = math.Min(1, math.Max(0, speed))
	}
	v := 0.75*gain + 0.25*speed
	if math.IsNaN(v) {
		return 0
	}
	return math.Min(1, math.Max(0, v))
}

// sortedKeys returns the class keys of m in sorted order — the
// canonical iteration order for encoding and fingerprinting.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
