package trace

import (
	"math"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestRecordMonotone(t *testing.T) {
	var tr Trace
	tr.Record(ms(1), 10)
	tr.Record(ms(2), 12) // worse: dropped
	tr.Record(ms(3), 8)
	tr.Record(ms(4), 8) // equal: dropped
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Final() != 8 {
		t.Errorf("Final = %v, want 8", tr.Final())
	}
}

func TestRecordClampsTime(t *testing.T) {
	var tr Trace
	tr.Record(ms(5), 10)
	tr.Record(ms(3), 7) // earlier timestamp: clamped to 5ms
	pts := tr.Points()
	if pts[1].T != ms(5) {
		t.Errorf("second point T = %v, want clamped to 5ms", pts[1].T)
	}
}

func TestBestAt(t *testing.T) {
	var tr Trace
	tr.Record(ms(10), 100)
	tr.Record(ms(50), 40)
	if got := tr.BestAt(ms(5)); !math.IsInf(got, 1) {
		t.Errorf("BestAt(5ms) = %v, want +Inf", got)
	}
	if got := tr.BestAt(ms(10)); got != 100 {
		t.Errorf("BestAt(10ms) = %v, want 100", got)
	}
	if got := tr.BestAt(ms(49)); got != 100 {
		t.Errorf("BestAt(49ms) = %v, want 100", got)
	}
	if got := tr.BestAt(ms(1000)); got != 40 {
		t.Errorf("BestAt(1s) = %v, want 40", got)
	}
}

func TestFirstBelow(t *testing.T) {
	var tr Trace
	tr.Record(ms(10), 100)
	tr.Record(ms(50), 40)
	if d, ok := tr.FirstBelow(100); !ok || d != ms(10) {
		t.Errorf("FirstBelow(100) = %v,%v want 10ms,true", d, ok)
	}
	if d, ok := tr.FirstBelow(50); !ok || d != ms(50) {
		t.Errorf("FirstBelow(50) = %v,%v want 50ms,true", d, ok)
	}
	if _, ok := tr.FirstBelow(10); ok {
		t.Error("FirstBelow(10) = true, want false")
	}
}

func TestSample(t *testing.T) {
	var tr Trace
	tr.Record(ms(2), 9)
	got := tr.Sample([]time.Duration{ms(1), ms(10)})
	if !math.IsInf(got[0], 1) || got[1] != 9 {
		t.Errorf("Sample = %v", got)
	}
}

func TestPaperCheckpoints(t *testing.T) {
	cp := PaperCheckpoints()
	if len(cp) != 6 || cp[0] != ms(1) || cp[5] != ms(100000) {
		t.Errorf("PaperCheckpoints = %v", cp)
	}
}

func TestScaledCheckpoints(t *testing.T) {
	got := ScaledCheckpoints(ms(500))
	want := []time.Duration{ms(1), ms(10), ms(100), ms(500)}
	if len(got) != len(want) {
		t.Fatalf("ScaledCheckpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScaledCheckpoints = %v, want %v", got, want)
		}
	}
	// Exact match at a paper checkpoint must not duplicate it.
	got = ScaledCheckpoints(ms(100))
	if len(got) != 3 || got[2] != ms(100) {
		t.Errorf("ScaledCheckpoints(100ms) = %v", got)
	}
}

func TestModeledClock(t *testing.T) {
	var c ModeledClock
	if c.Elapsed() != 0 {
		t.Error("fresh modeled clock not at zero")
	}
	c.Advance(376 * time.Microsecond)
	c.Advance(376 * time.Microsecond)
	if c.Elapsed() != 752*time.Microsecond {
		t.Errorf("Elapsed = %v, want 752µs", c.Elapsed())
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	if c.Elapsed() < 0 {
		t.Error("wall clock went backwards")
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if !math.IsInf(tr.Final(), 1) {
		t.Error("empty Final should be +Inf")
	}
	if !math.IsInf(tr.BestAt(ms(10)), 1) {
		t.Error("empty BestAt should be +Inf")
	}
}

func TestObserverSeesOnlyAcceptedImprovements(t *testing.T) {
	var tr Trace
	var seen []Point
	tr.Observe(func(pt Point) { seen = append(seen, pt) })
	tr.Record(1*time.Millisecond, 10)
	tr.Record(2*time.Millisecond, 12) // non-improving: dropped
	tr.Record(3*time.Millisecond, 7)
	if len(seen) != 2 {
		t.Fatalf("observer saw %d points, want 2", len(seen))
	}
	if seen[0].Cost != 10 || seen[1].Cost != 7 {
		t.Errorf("observer points = %v", seen)
	}
}
