// Package trace records anytime solver progress: the best solution cost
// found as a function of elapsed optimization time. Section 7.2 of the
// paper compares solvers by "how solution quality ... evolves as a function
// of optimization time", sampled at 1, 10, 100, 10³, 10⁴ and 10⁵ ms; this
// package is the shared recording substrate for all solvers.
package trace

import (
	"math"
	"sort"
	"time"
)

// Point is one improvement event: at time T the incumbent cost became Cost.
type Point struct {
	T    time.Duration
	Cost float64
}

// Trace is a monotone sequence of incumbent improvements. The zero value
// is ready to use.
type Trace struct {
	points   []Point
	observer func(Point)
}

// Observe installs fn to be called for every accepted improvement, in
// record order. Because Record drops non-improving entries, observers see
// a strictly decreasing cost sequence — the streaming substrate behind
// anytime-result callbacks.
func (tr *Trace) Observe(fn func(Point)) { tr.observer = fn }

// Record notes that cost was achieved at elapsed time t. Non-improving
// records are dropped so the trace stays monotone decreasing in cost.
func (tr *Trace) Record(t time.Duration, cost float64) {
	if n := len(tr.points); n > 0 {
		if cost >= tr.points[n-1].Cost {
			return
		}
		if t < tr.points[n-1].T {
			t = tr.points[n-1].T
		}
	}
	pt := Point{T: t, Cost: cost}
	tr.points = append(tr.points, pt)
	if tr.observer != nil {
		tr.observer(pt)
	}
}

// Points returns the recorded improvements in order. The slice is shared.
func (tr *Trace) Points() []Point { return tr.points }

// Len returns the number of recorded improvements.
func (tr *Trace) Len() int { return len(tr.points) }

// BestAt returns the incumbent cost at elapsed time t, or +Inf when no
// solution had been found by t.
func (tr *Trace) BestAt(t time.Duration) float64 {
	// Binary search for the last point with T <= t.
	i := sort.Search(len(tr.points), func(i int) bool { return tr.points[i].T > t })
	if i == 0 {
		return math.Inf(1)
	}
	return tr.points[i-1].Cost
}

// Final returns the last recorded cost, or +Inf for an empty trace.
func (tr *Trace) Final() float64 {
	if len(tr.points) == 0 {
		return math.Inf(1)
	}
	return tr.points[len(tr.points)-1].Cost
}

// CostEpsilon absorbs float drift when deciding whether an incumbent
// cost "reached" a target. It is the single tolerance shared by every
// target comparison in the tree — FirstBelow here, the portfolio's
// first-to-target cancellation, and the facade's WithTargetCost — so the
// layers can never disagree about when a race ends.
const CostEpsilon = 1e-9

// FirstBelow returns the earliest time at which the incumbent cost reached
// target or better, and ok=false if it never did. Figure 6's speedups are
// ratios of such times.
func (tr *Trace) FirstBelow(target float64) (time.Duration, bool) {
	for _, p := range tr.points {
		if p.Cost <= target+CostEpsilon {
			return p.T, true
		}
	}
	return 0, false
}

// Sample evaluates the trace at each checkpoint, producing the rows the
// paper's figures plot.
func (tr *Trace) Sample(checkpoints []time.Duration) []float64 {
	out := make([]float64, len(checkpoints))
	for i, c := range checkpoints {
		out[i] = tr.BestAt(c)
	}
	return out
}

// PaperCheckpoints are the measurement times from Section 7.2:
// 1, 10, 100, 10³, 10⁴, 10⁵ milliseconds.
func PaperCheckpoints() []time.Duration {
	return []time.Duration{
		1 * time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
		1000 * time.Millisecond,
		10000 * time.Millisecond,
		100000 * time.Millisecond,
	}
}

// ScaledCheckpoints returns the paper's logarithmic grid capped at limit,
// used by the offline harness to keep runtimes bounded.
func ScaledCheckpoints(limit time.Duration) []time.Duration {
	var out []time.Duration
	for _, c := range PaperCheckpoints() {
		if c <= limit {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != limit {
		out = append(out, limit)
	}
	return out
}

// Clock abstracts elapsed-time measurement so solvers can run against the
// wall clock while the simulated annealer charges modeled hardware time.
type Clock interface {
	// Elapsed returns time since the clock started.
	Elapsed() time.Duration
}

// WallClock measures real elapsed time from its creation.
type WallClock struct{ start time.Time }

// NewWallClock starts a wall clock now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Elapsed implements Clock.
func (c *WallClock) Elapsed() time.Duration { return time.Since(c.start) }

// ModeledClock accumulates externally charged time; the simulated annealer
// advances it by 376 µs per sample regardless of simulation wall time.
type ModeledClock struct{ t time.Duration }

// Advance adds d to the modeled elapsed time.
func (c *ModeledClock) Advance(d time.Duration) { c.t += d }

// Elapsed implements Clock.
func (c *ModeledClock) Elapsed() time.Duration { return c.t }
