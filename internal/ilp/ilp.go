// Package ilp implements 0/1 integer linear programming by LP-relaxation
// branch-and-bound over the internal/simplex solver, together with the two
// model formulations the paper benchmarks:
//
//   - LIN-MQO: the MQO problem modeled directly (one binary per plan,
//     exactly-one-per-query rows, one linearization variable per saving),
//   - LIN-QUB: the QUBO energy formula linearized per Dash's note on
//     Chimera QUBO instances (one variable per quadratic term with
//     y ≥ x_i + x_j − 1 / y ≤ x_i / y ≤ x_j rows as the signs require).
//
// The solver reports every incumbent improvement through a callback so the
// harness can record anytime behavior, and it proves optimality by tree
// exhaustion like the commercial solver used in the paper.
package ilp

import (
	"errors"
	"math"
	"time"

	"repro/internal/simplex"
)

// Model is a 0/1 integer program: minimize C·x subject to the rows, with
// every variable binary.
type Model struct {
	// C is the objective (length = number of variables).
	C []float64
	// Rows are the linear constraints.
	Rows []simplex.Constraint
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.C) }

// AddRow appends a constraint.
func (m *Model) AddRow(coeffs map[int]float64, rel simplex.Relation, b float64) {
	cp := make(map[int]float64, len(coeffs))
	for k, v := range coeffs {
		cp[k] = v
	}
	m.Rows = append(m.Rows, simplex.Constraint{Coeffs: cp, Rel: rel, B: b})
}

// Objective evaluates C·x for a binary assignment.
func (m *Model) Objective(x []bool) float64 {
	o := 0.0
	for j, on := range x {
		if on {
			o += m.C[j]
		}
	}
	return o
}

// Feasible reports whether the binary assignment satisfies every row.
func (m *Model) Feasible(x []bool) bool {
	for _, r := range m.Rows {
		lhs := 0.0
		for j, v := range r.Coeffs {
			if x[j] {
				lhs += v
			}
		}
		switch r.Rel {
		case simplex.LE:
			if lhs > r.B+1e-9 {
				return false
			}
		case simplex.GE:
			if lhs < r.B-1e-9 {
				return false
			}
		case simplex.EQ:
			if math.Abs(lhs-r.B) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// Options control the branch-and-bound search.
type Options struct {
	// Deadline stops the search when exceeded; zero means no limit.
	Deadline time.Duration
	// OnIncumbent observes every improving solution with the elapsed
	// wall time. May be nil.
	OnIncumbent func(x []bool, obj float64, elapsed time.Duration)
	// NodeLimit caps explored nodes; zero means no limit.
	NodeLimit int
}

// Result of a solve.
type Result struct {
	X         []bool
	Objective float64
	// Proven reports whether optimality was proven (tree exhausted) as
	// opposed to the search stopping on a limit.
	Proven bool
	Nodes  int
}

// ErrNoSolution reports an infeasible integer program.
var ErrNoSolution = errors.New("ilp: no feasible binary solution")

// Solve runs best-effort depth-first branch-and-bound with LP bounds.
func (m *Model) Solve(opt Options) (*Result, error) {
	start := time.Now()
	res := &Result{Objective: math.Inf(1), Proven: true}

	fixed := make([]int8, m.NumVars()) // -1 free is 0; we use 0=free,1=zero,2=one
	var rec func() bool                // returns false when limits hit
	rec = func() bool {
		res.Nodes++
		if opt.NodeLimit > 0 && res.Nodes > opt.NodeLimit {
			res.Proven = false
			return false
		}
		if opt.Deadline > 0 && time.Since(start) > opt.Deadline {
			res.Proven = false
			return false
		}
		lp := m.relaxation(fixed)
		sol, err := lp.Solve()
		if err != nil {
			// Infeasible subtree (or numerically stuck): prune. Iteration
			// limits are treated as prune-with-unproven.
			if errors.Is(err, simplex.ErrIterLimit) {
				res.Proven = false
			}
			return true
		}
		if sol.Objective >= res.Objective-1e-9 {
			return true // bound prune
		}
		// Find the most fractional variable.
		branch := -1
		bestFrac := 1e-6
		for j, v := range sol.X {
			if fixed[j] != 0 {
				continue
			}
			f := math.Abs(v - math.Round(v))
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch == -1 {
			// Integral LP solution: new incumbent.
			x := make([]bool, m.NumVars())
			for j, v := range sol.X {
				if fixed[j] == 2 || (fixed[j] == 0 && v > 0.5) {
					x[j] = true
				}
			}
			if obj := m.Objective(x); obj < res.Objective-1e-9 && m.Feasible(x) {
				res.Objective = obj
				res.X = x
				if opt.OnIncumbent != nil {
					opt.OnIncumbent(x, obj, time.Since(start))
				}
			}
			return true
		}
		// Branch: try the rounded-up side first (dive toward integrality).
		order := []int8{2, 1}
		if sol.X[branch] < 0.5 {
			order = []int8{1, 2}
		}
		for _, side := range order {
			fixed[branch] = side
			if !rec() {
				fixed[branch] = 0
				return false
			}
		}
		fixed[branch] = 0
		return true
	}
	rec()
	if res.X == nil {
		if res.Proven {
			return nil, ErrNoSolution
		}
		return nil, errors.New("ilp: no solution found within limits")
	}
	return res, nil
}

// relaxation builds the LP relaxation with the current fixings applied via
// bound rows.
func (m *Model) relaxation(fixed []int8) *simplex.Problem {
	lp := simplex.NewProblem(m.NumVars())
	for j, c := range m.C {
		lp.SetObjective(j, c)
	}
	for _, r := range m.Rows {
		lp.AddConstraint(r.Coeffs, r.Rel, r.B)
	}
	for j, f := range fixed {
		switch f {
		case 0:
			lp.AddUpperBound(j, 1)
		case 1:
			lp.AddUpperBound(j, 0)
		case 2:
			lp.AddConstraint(map[int]float64{j: 1}, simplex.EQ, 1)
		}
	}
	return lp
}
