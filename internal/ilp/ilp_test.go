package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/logical"
	"repro/internal/mqo"
	"repro/internal/qubo"
	"repro/internal/simplex"
)

func TestKnapsackStyle(t *testing.T) {
	// min -(5x0 + 4x1 + 3x2) s.t. 2x0 + 3x1 + x2 <= 4: best is x0,x2 = -8.
	m := &Model{C: []float64{-5, -4, -3}}
	m.AddRow(map[int]float64{0: 2, 1: 3, 2: 1}, simplex.LE, 4)
	r, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Proven {
		t.Error("small solve not proven optimal")
	}
	if math.Abs(r.Objective-(-8)) > 1e-6 {
		t.Errorf("objective = %v, want -8", r.Objective)
	}
	if !r.X[0] || r.X[1] || !r.X[2] {
		t.Errorf("x = %v, want [true false true]", r.X)
	}
}

func TestInfeasibleModel(t *testing.T) {
	m := &Model{C: []float64{1}}
	m.AddRow(map[int]float64{0: 1}, simplex.GE, 2) // binary can't reach 2
	if _, err := m.Solve(Options{}); err == nil {
		t.Error("infeasible model solved")
	}
}

func TestIncumbentCallback(t *testing.T) {
	m := &Model{C: []float64{-1, -1, -1}}
	m.AddRow(map[int]float64{0: 1, 1: 1, 2: 1}, simplex.LE, 2)
	var objs []float64
	r, err := m.Solve(Options{OnIncumbent: func(x []bool, obj float64, _ time.Duration) {
		objs = append(objs, obj)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) == 0 {
		t.Fatal("no incumbents reported")
	}
	for i := 1; i < len(objs); i++ {
		if objs[i] >= objs[i-1] {
			t.Error("incumbents not strictly improving")
		}
	}
	if objs[len(objs)-1] != r.Objective {
		t.Error("last incumbent differs from final objective")
	}
}

func TestNodeLimit(t *testing.T) {
	// An odd-cycle packing LP has the fractional optimum (1/2, 1/2, 1/2),
	// so the root node must branch; a one-node limit cannot prove
	// optimality.
	m := &Model{C: []float64{-1, -1, -1}}
	m.AddRow(map[int]float64{0: 1, 1: 1}, simplex.LE, 1)
	m.AddRow(map[int]float64{1: 1, 2: 1}, simplex.LE, 1)
	m.AddRow(map[int]float64{0: 1, 2: 1}, simplex.LE, 1)
	r, err := m.Solve(Options{NodeLimit: 1})
	if err == nil && r.Proven {
		t.Error("one-node search claimed proof on a fractional root")
	}
	// Without the limit the same model solves to -1.
	r, err = m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Proven || math.Abs(r.Objective-(-1)) > 1e-6 {
		t.Errorf("objective = %v (proven=%v), want -1 proven", r.Objective, r.Proven)
	}
}

func TestBuildMQOMatchesExact(t *testing.T) {
	cfg := mqo.DefaultGeneratorConfig()
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		class := mqo.Class{Queries: 2 + rng.Intn(5), PlansPerQuery: 1 + rng.Intn(3)}
		p := mqo.Generate(rng, class, cfg)
		m := BuildMQO(p)
		r, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sol := m.DecodeSolution(r.X)
		got, err := p.Cost(sol)
		if err != nil {
			t.Fatalf("seed %d: decoded invalid solution: %v", seed, err)
		}
		_, want, err := p.Optimum()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("seed %d: ILP cost %v, optimal %v", seed, got, want)
		}
		if math.Abs(r.Objective-want) > 1e-6 {
			t.Errorf("seed %d: ILP objective %v, optimal %v", seed, r.Objective, want)
		}
	}
}

func TestBuildQUBOMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(8)
		q := qubo.New(n)
		for i := 0; i < n; i++ {
			q.AddLinear(i, rng.NormFloat64()*3)
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					q.AddQuadratic(i, j, rng.NormFloat64()*3)
				}
			}
		}
		m := BuildQUBO(q)
		r, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, want, err := q.SolveExhaustive(0)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Energy(r.X)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("trial %d: LIN-QUB energy %v, exhaustive %v", trial, got, want)
		}
	}
}

// TestLinQUBSolvesLogicalMapping ties the chain together: the linearized
// QUBO of a logical MQO mapping must reach the true MQO optimum.
func TestLinQUBSolvesLogicalMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := mqo.Generate(rng, mqo.Class{Queries: 3, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	mapping := logical.Map(p)
	m := BuildQUBO(mapping.QUBO)
	r, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, valid := mapping.DecodeStrict(m.DecodeVariables(r.X))
	if !valid {
		t.Fatal("LIN-QUB minimizer is not a valid MQO solution")
	}
	got, err := p.Cost(sol)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := p.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("LIN-QUB cost %v, optimal %v", got, want)
	}
}

func TestDeadlineRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := mqo.Generate(rng, mqo.Class{Queries: 30, PlansPerQuery: 3}, mqo.DefaultGeneratorConfig())
	m := BuildMQO(p)
	start := time.Now()
	_, _ = m.Solve(Options{Deadline: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("solve took %v despite 50ms deadline", elapsed)
	}
}

func TestFeasible(t *testing.T) {
	m := &Model{C: []float64{0, 0}}
	m.AddRow(map[int]float64{0: 1, 1: 1}, simplex.EQ, 1)
	if m.Feasible([]bool{true, true}) {
		t.Error("violating assignment judged feasible")
	}
	if !m.Feasible([]bool{true, false}) {
		t.Error("satisfying assignment judged infeasible")
	}
}
