package ilp

import (
	"repro/internal/mqo"
	"repro/internal/qubo"
	"repro/internal/simplex"
)

// MQOModel is the direct integer-programming formulation of an MQO
// instance (the paper's LIN-MQO baseline): a binary X_p per plan, an
// exactly-one row per query, and one linearization variable y per saving
// with y ≤ X_p1 and y ≤ X_p2 rows. Savings enter the objective with a
// negative sign, so the minimizer sets y = 1 whenever both plans run and
// no y ≥ X_p1 + X_p2 − 1 rows are needed.
type MQOModel struct {
	Model
	Problem *mqo.Problem
	// YOffset is the index of the first linearization variable.
	YOffset int
}

// BuildMQO constructs the LIN-MQO model.
func BuildMQO(p *mqo.Problem) *MQOModel {
	n := p.NumPlans()
	m := &MQOModel{Problem: p, YOffset: n}
	m.C = make([]float64, n+len(p.Savings))
	copy(m.C, p.Costs)
	for i, s := range p.Savings {
		m.C[n+i] = -s.Value
		m.AddRow(map[int]float64{n + i: 1, s.P1: -1}, simplex.LE, 0)
		m.AddRow(map[int]float64{n + i: 1, s.P2: -1}, simplex.LE, 0)
	}
	for _, plans := range p.QueryPlans {
		row := make(map[int]float64, len(plans))
		for _, pl := range plans {
			row[pl] = 1
		}
		m.AddRow(row, simplex.EQ, 1)
	}
	return m
}

// DecodeSolution converts a binary model assignment into an MQO solution.
func (m *MQOModel) DecodeSolution(x []bool) mqo.Solution {
	return m.Problem.Repair(m.Problem.SolutionFromVector(x[:m.Problem.NumPlans()]))
}

// QUBOModel is the linearized QUBO formulation (the paper's LIN-QUB
// baseline, using the linear reformulation that is "more suitable for
// integer programming solvers"): one binary per QUBO variable and one per
// quadratic term, with the McCormick rows matching the term's sign.
// Negative-weight terms need only y ≤ x_i and y ≤ x_j (the objective pulls
// y up); positive-weight terms need only y ≥ x_i + x_j − 1 (the objective
// pushes y down).
type QUBOModel struct {
	Model
	QUBO *qubo.Problem
	// YOffset is the index of the first product variable.
	YOffset int
}

// BuildQUBO constructs the LIN-QUB model.
func BuildQUBO(q *qubo.Problem) *QUBOModel {
	n := q.N()
	couplings := q.Couplings()
	m := &QUBOModel{QUBO: q, YOffset: n}
	m.C = make([]float64, n+len(couplings))
	for i := 0; i < n; i++ {
		m.C[i] = q.Linear(i)
	}
	for k, c := range couplings {
		y := n + k
		m.C[y] = c.W
		if c.W < 0 {
			m.AddRow(map[int]float64{y: 1, c.I: -1}, simplex.LE, 0)
			m.AddRow(map[int]float64{y: 1, c.J: -1}, simplex.LE, 0)
		} else {
			m.AddRow(map[int]float64{y: 1, c.I: -1, c.J: -1}, simplex.GE, -1)
		}
	}
	return m
}

// Energy returns the QUBO energy of the decoded variables, including the
// problem offset (the model objective omits it).
func (m *QUBOModel) Energy(x []bool) float64 {
	return m.QUBO.Energy(x[:m.QUBO.N()])
}

// DecodeVariables returns the QUBO variable assignment from a model
// assignment.
func (m *QUBOModel) DecodeVariables(x []bool) []bool {
	out := make([]bool, m.QUBO.N())
	copy(out, x[:m.QUBO.N()])
	return out
}
