package decompose

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mqo"
	"repro/internal/trace"
)

// TestWarmNeverWorsensIncumbent: a warm-started solve must end at or
// below its starting cost, whatever the starting solution — windows only
// accept strict improvements.
func TestWarmNeverWorsensIncumbent(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := mqo.Generate(rng, mqo.Class{Queries: 12, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
		// A deliberately arbitrary (valid) warm start: first plan per query.
		warm := make(mqo.Solution, p.NumQueries())
		for q := range warm {
			warm[q] = p.QueryPlans[q][0]
		}
		start := p.CostOfSet(warm)
		res, err := Solve(context.Background(), p, Options{
			WindowQueries: 4,
			Core:          core.Options{Runs: 40},
			Warm:          warm,
		}, rng.Int63())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Cost > start+1e-9 {
			t.Errorf("seed %d: warm solve worsened %v -> %v", seed, start, res.Cost)
		}
		if !p.Valid(res.Solution) {
			t.Errorf("seed %d: invalid solution", seed)
		}
	}
}

// TestWarmStreamsWarmCostFirst: the T=0 incumbent of a warm solve is the
// warm solution's cost, not the greedy construction's.
func TestWarmStreamsWarmCostFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := mqo.Generate(rng, mqo.Class{Queries: 8, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	warm := make(mqo.Solution, p.NumQueries())
	for q := range warm {
		warm[q] = p.QueryPlans[q][len(p.QueryPlans[q])-1]
	}
	var first *trace.Point
	_, err := Solve(context.Background(), p, Options{
		WindowQueries: 4,
		Core:          core.Options{Runs: 20},
		Warm:          warm,
		OnImprovement: func(pt trace.Point) {
			if first == nil {
				cp := pt
				first = &cp
			}
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first == nil || first.T != 0 || first.Cost != p.CostOfSet(warm) {
		t.Fatalf("first streamed point = %+v, want T=0 cost %v", first, p.CostOfSet(warm))
	}
}

// TestDirtySkipsCleanWindows: with no dirty queries nothing is solved and
// no modeled time is charged; with one dirty query only the windows
// touching it run.
func TestDirtySkipsCleanWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := mqo.Generate(rng, mqo.Class{Queries: 16, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	warm := p.Repair(make(mqo.Solution, p.NumQueries()))

	clean := make([]bool, p.NumQueries())
	res, err := Solve(context.Background(), p, Options{
		WindowQueries: 4, Core: core.Options{Runs: 20}, Warm: warm, Dirty: clean,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 0 || res.Runs != 0 || res.ModeledTime != 0 {
		t.Fatalf("all-clean solve still ran %d windows (%d runs, %v)", res.Windows, res.Runs, res.ModeledTime)
	}
	if res.Cost != p.CostOfSet(warm) {
		t.Fatalf("all-clean solve changed the cost: %v vs %v", res.Cost, p.CostOfSet(warm))
	}

	oneDirty := make([]bool, p.NumQueries())
	oneDirty[0] = true
	res, err = Solve(context.Background(), p, Options{
		WindowQueries: 4, Core: core.Options{Runs: 20}, Warm: warm, Dirty: oneDirty,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(context.Background(), p, Options{
		WindowQueries: 4, Core: core.Options{Runs: 20}, Warm: warm,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows >= full.Windows+res.WindowsSkipped && res.WindowsSkipped == 0 {
		t.Fatalf("dirty restriction skipped nothing: solved %d, skipped %d (full solve: %d)",
			res.Windows, res.WindowsSkipped, full.Windows)
	}
}

// TestDirtyValidation pins the option contract.
func TestDirtyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := mqo.Generate(rng, mqo.Class{Queries: 6, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	warm := p.Repair(make(mqo.Solution, p.NumQueries()))
	if _, err := Solve(context.Background(), p, Options{Dirty: make([]bool, 6), Core: core.Options{Runs: 5}}, 1); err == nil {
		t.Error("Dirty without Warm: want error")
	}
	if _, err := Solve(context.Background(), p, Options{Warm: warm, Dirty: make([]bool, 3), Core: core.Options{Runs: 5}}, 1); err == nil {
		t.Error("Dirty length mismatch: want error")
	}
	if _, err := Solve(context.Background(), p, Options{Warm: mqo.Solution{0}, Core: core.Options{Runs: 5}}, 1); err == nil {
		t.Error("invalid Warm: want error")
	}
}
