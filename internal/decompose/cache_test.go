package decompose

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/mqo"
)

// TestDecomposeSharesCache: a decomposed solve passes the compile cache
// to every window and stays bit-identical with caching on; repeated
// window shapes across sweeps hit instead of recompiling.
func TestDecomposeSharesCache(t *testing.T) {
	g := chimera.DWave2X(0, 0)
	p, err := core.GenerateEmbeddable(rand.New(rand.NewSource(3)), g,
		mqo.Class{Queries: 20, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{
		WindowQueries: 6,
		Core:          core.Options{Runs: 30, Parallelism: 1},
	}
	plain, err := Solve(ctx, p, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	cc := core.NewCompileCache(64)
	opts.Core.Cache = cc
	cached, err := Solve(ctx, p, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Solution, plain.Solution) || cached.Cost != plain.Cost ||
		cached.Windows != plain.Windows || cached.Sweeps != plain.Sweeps {
		t.Fatal("decomposed solve diverges with the compile cache enabled")
	}
	st := cc.Stats()
	if st.Misses == 0 {
		t.Fatal("decomposed solve never reached the cache")
	}
	if st.Hits == 0 {
		t.Error("no window shape repeated across sweeps; expected at least one cache hit")
	}
}
