// Package decompose implements the paper's future-work proposal of
// mapping one MQO problem into a SERIES of QUBO problems (Section 9:
// "We will explore approaches that map one MQO problem instance into a
// series of QUBO problems in future work which should in principle allow
// to treat larger problem instances").
//
// The decomposition slides a window over the query sequence. Each window
// becomes a sub-instance whose plan costs absorb the savings toward plans
// already fixed outside the window, so optimizing the window in isolation
// accounts exactly for its interactions with the frozen remainder. Every
// window is solved on the annealer via core.QuantumMQO (TRIAD embedding:
// windows are small, arbitrary coupling structure is fine), and
// back-and-forth sweeps repeat until no sweep improves the incumbent.
// Chain-structured workloads converge to near-optimal solutions even when
// the full instance needs many times the available qubits.
package decompose

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dwave"
	"repro/internal/mqo"
	"repro/internal/splitmix"
	"repro/internal/trace"
)

// Options configure the decomposition.
type Options struct {
	// WindowQueries is the number of consecutive queries per
	// sub-instance. Its plan count must fit the annealer's TRIAD
	// capacity (48 variables on a fault-free 12×12 graph); 0 selects a
	// window automatically.
	WindowQueries int
	// Overlap is the number of queries shared between consecutive
	// windows (default: half the window).
	Overlap int
	// MaxSweeps bounds the number of left-right passes (default 4).
	MaxSweeps int
	// Core configures the per-window annealer pipeline.
	Core core.Options
	// OnImprovement, if non-nil, observes the starting incumbent (greedy,
	// or Warm when given) and every accepted window improvement as they
	// happen, in strictly decreasing cost order. Point times are
	// cumulative modeled annealer time across all windows solved so far.
	OnImprovement func(trace.Point)
	// Warm, when non-nil, must be a valid solution of the full instance;
	// sweeps start from it instead of the greedy construction, and every
	// window solve warm-starts the annealer from its own slice of the
	// incumbent (core.Options.WarmStart). This is the delta-solving mode
	// of long-lived sessions: the previous epoch's incumbent carries
	// over. Leaving Warm nil reproduces the historical from-scratch
	// behavior bit-for-bit.
	Warm mqo.Solution
	// Dirty, when non-nil, must hold one flag per query; only windows
	// containing at least one dirty query are re-solved, and clean
	// windows are skipped without charging modeled time. Requires Warm
	// (skipping windows from a greedy start would just leave them
	// unoptimized). Window seeds are positional over the SOLVED windows,
	// so a given (instance, Warm, Dirty) triple is deterministic at any
	// parallelism.
	Dirty []bool
}

// Result of a decomposed solve.
type Result struct {
	Solution mqo.Solution
	Cost     float64
	// Windows is the number of sub-instances solved on the annealer.
	Windows int
	// WindowsSkipped counts windows left untouched by the Dirty
	// restriction across all sweeps.
	WindowsSkipped int
	// Sweeps is the number of passes performed.
	Sweeps int
	// Runs is the total number of annealing runs across all windows.
	Runs int
	// ModeledTime is the modeled annealer time those runs consumed.
	ModeledTime time.Duration
}

// Solve optimizes an MQO instance of arbitrary size through a series of
// annealer-sized QUBO problems. Each window solve draws its private
// random stream by splitting seed with the window's global position, so
// the series is reproducible at any annealer parallelism. It checks ctx
// between windows: a cancelled context stops the sweep and the incumbent
// found so far is returned together with ctx.Err() (the incumbent is
// always valid, since sweeps start from the greedy solution).
func Solve(ctx context.Context, p *mqo.Problem, opt Options, seed int64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nq := p.NumQueries()
	if nq == 0 {
		return &Result{Solution: mqo.Solution{}}, nil
	}
	window := opt.WindowQueries
	if window <= 0 {
		// Keep window plan counts within a conservative TRIAD budget.
		maxL := 1
		for _, plans := range p.QueryPlans {
			if len(plans) > maxL {
				maxL = len(plans)
			}
		}
		window = 32 / maxL
		if window < 1 {
			window = 1
		}
	}
	if window > nq {
		window = nq
	}
	overlap := opt.Overlap
	if overlap <= 0 || overlap >= window {
		overlap = window / 2
	}
	step := window - overlap
	if step < 1 {
		step = 1
	}
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 4
	}

	if opt.Dirty != nil {
		if opt.Warm == nil {
			return nil, fmt.Errorf("decompose: Dirty requires Warm")
		}
		if len(opt.Dirty) != nq {
			return nil, fmt.Errorf("decompose: Dirty has %d flags for %d queries", len(opt.Dirty), nq)
		}
	}

	// Start from the warm incumbent when given, the greedy solution
	// otherwise; windows only ever improve it.
	var sol mqo.Solution
	if opt.Warm != nil {
		if !p.Valid(opt.Warm) {
			return nil, fmt.Errorf("decompose: warm solution is not a valid plan selection")
		}
		sol = append(mqo.Solution(nil), opt.Warm...)
	} else {
		sol = p.Repair(make(mqo.Solution, nq))
	}
	cost := p.CostOfSet(sol)
	res := &Result{}
	if opt.OnImprovement != nil {
		opt.OnImprovement(trace.Point{T: 0, Cost: cost})
	}
	for sweep := 0; sweep < maxSweeps && ctx.Err() == nil; sweep++ {
		res.Sweeps = sweep + 1
		improvedSweep := false
		starts := windowStarts(nq, window, step, sweep%2 == 1)
		for _, a := range starts {
			if ctx.Err() != nil {
				break
			}
			b := a + window
			if b > nq {
				b = nq
			}
			if opt.Dirty != nil && !anyDirty(opt.Dirty, a, b) {
				res.WindowsSkipped++
				continue
			}
			improved, runs, err := solveWindow(ctx, p, sol, a, b, opt.Core, opt.Warm != nil, splitmix.Split(seed, int64(res.Windows)))
			if err != nil {
				return nil, err
			}
			res.Windows++
			res.Runs += runs
			res.ModeledTime += time.Duration(runs) * (dwave.PaperAnnealTime + dwave.PaperReadoutTime)
			if improved {
				improvedSweep = true
				if opt.OnImprovement != nil {
					opt.OnImprovement(trace.Point{T: res.ModeledTime, Cost: p.CostOfSet(sol)})
				}
			}
		}
		newCost := p.CostOfSet(sol)
		if newCost > cost+1e-9 {
			return nil, fmt.Errorf("decompose: window pass worsened the solution (%v -> %v)", cost, newCost)
		}
		cost = newCost
		if !improvedSweep {
			break
		}
	}
	res.Solution = sol
	res.Cost = cost
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// anyDirty reports whether [a, b) contains a dirty query.
func anyDirty(dirty []bool, a, b int) bool {
	for q := a; q < b; q++ {
		if dirty[q] {
			return true
		}
	}
	return false
}

// windowStarts enumerates window anchor positions, right-to-left on
// reverse sweeps.
func windowStarts(nq, window, step int, reverse bool) []int {
	var starts []int
	for a := 0; ; a += step {
		if a+window >= nq {
			starts = append(starts, nq-window)
			break
		}
		starts = append(starts, a)
	}
	if reverse {
		for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
			starts[i], starts[j] = starts[j], starts[i]
		}
	}
	return starts
}

// solveWindow extracts queries [a, b) into a sub-instance, folds savings
// toward the frozen remainder into plan costs, solves it on the annealer
// (warm-starting from the incumbent's window slice when warm is set),
// and writes the window's selection back when it improves the incumbent.
func solveWindow(ctx context.Context, p *mqo.Problem, sol mqo.Solution, a, b int, opt core.Options, warm bool, seed int64) (improved bool, runs int, err error) {
	selected := make([]bool, p.NumPlans())
	inWindow := make([]bool, p.NumPlans())
	for q, pl := range sol {
		if q < a || q >= b {
			selected[pl] = true
		}
	}
	// Build the sub-instance: local plan ids 0..k-1.
	var (
		subPlans  [][]int
		subCosts  []float64
		local     = map[int]int{}
		globalOf  []int
		minNonNeg float64
	)
	for q := a; q < b; q++ {
		plans := make([]int, len(p.QueryPlans[q]))
		for i, pl := range p.QueryPlans[q] {
			id := len(globalOf)
			local[pl] = id
			globalOf = append(globalOf, pl)
			// Fold savings to frozen external selections into the cost.
			c := p.Costs[pl]
			for _, sv := range p.SavingsOf(pl) {
				other := sv.P1
				if other == pl {
					other = sv.P2
				}
				if selected[other] {
					c -= sv.Value
				}
			}
			if c < minNonNeg {
				minNonNeg = c
			}
			plans[i] = id
			subCosts = append(subCosts, c)
			inWindow[pl] = true
		}
		subPlans = append(subPlans, plans)
	}
	// The MQO model requires non-negative costs; shift uniformly per
	// sub-instance (a per-plan constant cannot change the argmin within
	// a query... it can, so shift ALL plans by the same amount instead).
	if minNonNeg < 0 {
		for i := range subCosts {
			subCosts[i] -= minNonNeg
		}
	}
	var subSavings []mqo.Saving
	for _, sv := range p.Savings {
		if inWindow[sv.P1] && inWindow[sv.P2] {
			subSavings = append(subSavings, mqo.Saving{P1: local[sv.P1], P2: local[sv.P2], Value: sv.Value})
		}
	}
	sub, err := mqo.New(subPlans, subCosts, subSavings)
	if err != nil {
		return false, 0, fmt.Errorf("decompose: building window [%d,%d): %w", a, b, err)
	}
	if warm {
		// The incumbent's window slice, re-indexed into local plan ids,
		// seeds the annealer (sub-instance costs are shifted uniformly,
		// so the incumbent's basin carries over unchanged).
		subWarm := make(mqo.Solution, b-a)
		for q := a; q < b; q++ {
			subWarm[q-a] = local[sol[q]]
		}
		opt.WarmStart = subWarm
	}
	subRes, err := core.QuantumMQO(ctx, sub, opt, seed)
	if err != nil {
		if ctx.Err() != nil {
			return false, 0, nil // cancelled mid-window: keep the incumbent
		}
		return false, 0, fmt.Errorf("decompose: window [%d,%d): %w", a, b, err)
	}
	// Accept only improvements against the incumbent window assignment.
	before := p.CostOfSet(sol)
	candidate := append(mqo.Solution(nil), sol...)
	for i, localPl := range subRes.Solution {
		candidate[a+i] = globalOf[localPl]
	}
	after := p.CostOfSet(candidate)
	if after < before-1e-9 {
		copy(sol, candidate)
		return true, subRes.Runs, nil
	}
	return false, subRes.Runs, nil
}
