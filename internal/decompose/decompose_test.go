package decompose

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/mqo"
)

func TestSolveMatchesOptimumOnSmallInstances(t *testing.T) {
	cfg := mqo.DefaultGeneratorConfig()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := mqo.Generate(rng, mqo.Class{Queries: 10, PlansPerQuery: 2}, cfg)
		res, err := Solve(context.Background(), p, Options{WindowQueries: 4, Core: core.Options{Runs: 60}}, rng.Int63())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.Valid(res.Solution) {
			t.Fatalf("seed %d: invalid solution", seed)
		}
		_, want, err := p.Optimum()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-want) > 1e-9 {
			t.Errorf("seed %d: decomposed cost %v, optimal %v", seed, res.Cost, want)
		}
	}
}

// TestSolveBeyondAnnealerCapacity is the headline property: the
// decomposition treats instances whose single-QUBO mapping exceeds the
// qubit budget (the paper's future-work motivation). A 2000-query
// instance needs ≈4000 qubits as one QUBO — far beyond 1152 — yet windows
// of 16 queries fit comfortably.
func TestSolveBeyondAnnealerCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := mqo.Generate(rng, mqo.Class{Queries: 2000, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	// Confirm the monolithic pipeline rejects it.
	if _, err := core.QuantumMQO(context.Background(), p, core.Options{Runs: 1}, rng.Int63()); err == nil {
		t.Fatal("2000-query instance unexpectedly fit the annealer as one QUBO")
	}
	res, err := Solve(context.Background(), p, Options{WindowQueries: 16, Core: core.Options{Runs: 40}}, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(res.Solution) {
		t.Fatal("invalid solution")
	}
	_, want, err := p.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	gap := (res.Cost - want) / want
	if gap < 0 {
		t.Fatalf("cost %v below optimum %v", res.Cost, want)
	}
	if gap > 0.01 {
		t.Errorf("decomposed gap %.3f%% exceeds 1%% on a chain instance", gap*100)
	}
	if res.Windows == 0 || res.Sweeps == 0 {
		t.Error("no windows solved")
	}
}

func TestSolveImprovesOverGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := mqo.Generate(rng, mqo.Class{Queries: 200, PlansPerQuery: 3}, mqo.DefaultGeneratorConfig())
	greedy := p.Repair(make(mqo.Solution, p.NumQueries()))
	greedyCost := p.CostOfSet(greedy)
	res, err := Solve(context.Background(), p, Options{Core: core.Options{Runs: 40}}, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > greedyCost+1e-9 {
		t.Errorf("decomposition (%v) worse than greedy (%v)", res.Cost, greedyCost)
	}
}

func TestSolveHandlesDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Single query.
	p := mqo.MustNew([][]int{{0, 1}}, []float64{3, 1}, nil)
	res, err := Solve(context.Background(), p, Options{Core: core.Options{Runs: 20}}, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Errorf("single query: cost %v, want 1", res.Cost)
	}
	// Window larger than the instance.
	p2 := mqo.Generate(rng, mqo.Class{Queries: 3, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	if _, err := Solve(context.Background(), p2, Options{WindowQueries: 50, Core: core.Options{Runs: 20}}, rng.Int63()); err != nil {
		t.Fatal(err)
	}
}

func TestWindowStarts(t *testing.T) {
	fwd := windowStarts(10, 4, 2, false)
	want := []int{0, 2, 4, 6}
	if len(fwd) != len(want) {
		t.Fatalf("starts = %v, want %v", fwd, want)
	}
	for i := range want {
		if fwd[i] != want[i] {
			t.Fatalf("starts = %v, want %v", fwd, want)
		}
	}
	rev := windowStarts(10, 4, 2, true)
	if rev[0] != 6 || rev[len(rev)-1] != 0 {
		t.Errorf("reverse starts = %v", rev)
	}
	// Window == instance.
	if got := windowStarts(4, 4, 2, false); len(got) != 1 || got[0] != 0 {
		t.Errorf("full-window starts = %v", got)
	}
}

// TestNegativeFoldedCostsShifted checks the cost-shift path: folding
// external savings can push a plan's adjusted cost below zero, which the
// MQO model rejects; the uniform shift must preserve the window optimum.
func TestNegativeFoldedCostsShifted(t *testing.T) {
	// Query 1's plan 2 saves 10 against query 0's plan 0 but costs 4:
	// folded cost −6 when plan 0 is frozen.
	p := mqo.MustNew(
		[][]int{{0}, {1, 2}, {3}},
		[]float64{5, 5, 4, 2},
		[]mqo.Saving{{P1: 0, P2: 2, Value: 10}},
	)
	rng := rand.New(rand.NewSource(9))
	res, err := Solve(context.Background(), p, Options{WindowQueries: 1, Core: core.Options{Runs: 30}}, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := p.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", res.Cost, want)
	}
	if res.Solution[1] != 2 {
		t.Errorf("window missed the folded saving: %v", res.Solution)
	}
}

func TestSolveOnFaultyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := mqo.Generate(rng, mqo.Class{Queries: 60, PlansPerQuery: 2}, mqo.DefaultGeneratorConfig())
	g := chimera.DWave2X(chimera.PaperBrokenQubits, 1)
	res, err := Solve(context.Background(), p, Options{WindowQueries: 8, Core: core.Options{Runs: 30, Graph: g}}, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(res.Solution) {
		t.Fatal("invalid solution on faulty graph")
	}
}
